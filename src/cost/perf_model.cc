#include "src/cost/perf_model.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace aceso {
namespace {

int FloorPow2(int n) {
  int p = 1;
  while (p * 2 <= n) {
    p *= 2;
  }
  return p;
}

// The activation layout flowing between consecutive ops of a stage.
struct Layout {
  bool sharded = false;
  int tp = 1;  // shard degree when sharded
};

// The layout after one op: partitioned column-sharded ops emit a sharded
// activation, every other partitioned/replicated op emits a replicated one,
// and shard followers preserve whatever flows in.
Layout AdvanceLayout(const Operator& op, const OpParallel& setting,
                     Layout layout) {
  if (op.tp_class == TpClass::kPartitioned) {
    if (setting.tp > 1 && setting.tp_dim == TpDim::kColumn) {
      return Layout{true, setting.tp};
    }
    return Layout{false, 1};  // row output replicated post all-reduce
  }
  if (op.tp_class == TpClass::kReplicated) {
    return Layout{false, 1};
  }
  return layout;
}

// One op's cost decomposition given its walk-carried context: the incoming
// activation layout and whether the previous op ran at a different dp
// degree. This is the single derivation both the direct walk (WalkStage)
// and the memoized path (ComputeStageCost) funnel through, so a memo hit is
// bit-identical to a re-derivation by construction. Every input that can
// change the result is part of the op-memo key.
OpBreakdown ComputeOpBreakdown(ProfileDatabase& db, const ClusterSpec& cluster,
                               const Operator& op, const OpParallel& setting,
                               Precision precision, int mbs, int first_device,
                               const CommDomain& stage_domain, Layout layout,
                               bool dp_mismatch) {
  OpBreakdown out;
  const int local_batch = mbs / setting.dp;
  const int shards = EffectiveShards(op, setting.tp);

  // --- kernel time ---
  const OpMeasurement meas = db.OpTime(op, precision, shards, local_batch);
  out.fwd_kernel = meas.fwd_seconds;
  out.bwd_kernel = meas.bwd_seconds;
  out.recompute = setting.recompute;

  // --- tensor-parallel collectives (Megatron f/g operators) ---
  const bool sharded_weights =
      op.tp_class == TpClass::kPartitioned && setting.tp > 1;
  if (sharded_weights) {
    const CommDomain tp_domain{
        setting.tp, cluster.GroupCrossesNodes(first_device, setting.tp, 1)};
    if (setting.tp_dim == TpDim::kColumn) {
      // g^T: all-reduce the input gradient in backward.
      out.bwd_comm += db.CollectiveTime(
          CollectiveKind::kAllReduce,
          op.in_bytes * static_cast<int64_t>(local_batch), tp_domain);
    } else {
      // g: all-reduce the partial-sum output in forward.
      out.fwd_comm += db.CollectiveTime(
          CollectiveKind::kAllReduce,
          op.out_bytes * static_cast<int64_t>(local_batch), tp_domain);
    }
  }

  // --- resharding at op boundaries (§4.2) ---
  double reshard = 0.0;
  const int64_t boundary_bytes =
      op.in_bytes * static_cast<int64_t>(local_batch);
  if (dp_mismatch) {
    // Batch-dimension redistribution across the stage's devices.
    reshard += db.CollectiveTime(CollectiveKind::kAllGather, boundary_bytes,
                                 stage_domain);
  }
  const bool needs_replicated_input =
      (op.tp_class == TpClass::kPartitioned &&
       setting.tp_dim == TpDim::kColumn) ||
      op.tp_class == TpClass::kReplicated;
  if (layout.sharded) {
    const CommDomain shard_domain{
        layout.tp, cluster.GroupCrossesNodes(first_device, layout.tp, 1)};
    if (needs_replicated_input) {
      reshard += db.CollectiveTime(CollectiveKind::kAllGather, boundary_bytes,
                                   shard_domain);
    } else if (op.tp_class == TpClass::kPartitioned &&
               setting.tp_dim == TpDim::kRow && layout.tp != setting.tp) {
      // Row op expects its own sharding; re-gather then slice.
      reshard += db.CollectiveTime(CollectiveKind::kAllGather, boundary_bytes,
                                   shard_domain);
    }
  }
  // Backward mirrors forward resharding (reduce-scatter of gradients).
  out.fwd_comm += reshard;
  out.bwd_comm += reshard;

  // --- memory (keyed by the layout *after* this op) ---
  layout = AdvanceLayout(op, setting, layout);
  const int store_shards = layout.sharded ? layout.tp : 1;
  out.stored_bytes =
      setting.recompute
          ? 0
          : op.out_bytes * static_cast<int64_t>(local_batch) / store_shards;
  out.param_bytes = op.tp_class == TpClass::kPartitioned && setting.tp > 1
                        ? op.param_bytes / setting.tp
                        : op.param_bytes;
  out.transient_bytes =
      op.work_bytes * static_cast<int64_t>(local_batch) / shards;
  out.workspace_bytes =
      out.transient_bytes +
      op.out_bytes * static_cast<int64_t>(local_batch) / store_shards;

  // --- optimizer state (grads + Adam moments + master weights) ---
  const double opt_mult = OptimizerMultiplier(precision);
  out.optimizer_bytes =
      static_cast<int64_t>(static_cast<double>(out.param_bytes) * opt_mult);
  const bool zero = setting.zero_opt && setting.dp > 1;
  if (zero) {
    // ZeRO-style sharding: gradients stay full (they feed the all-reduce)
    // but optimizer state divides across the dp group.
    const int64_t grads = out.param_bytes;
    out.optimizer_bytes = grads + (out.optimizer_bytes - grads) / setting.dp;
  }

  // --- data-parallel gradient synchronization (per iteration) ---
  if (setting.dp > 1 && out.param_bytes > 0) {
    const CommDomain dp_domain{
        setting.dp,
        cluster.GroupCrossesNodes(first_device, setting.dp, setting.tp)};
    out.dp_sync = db.CollectiveTime(CollectiveKind::kAllReduce,
                                    out.param_bytes, dp_domain);
    if (zero) {
      // Each rank updates its optimizer shard, then all-gathers the
      // refreshed parameters.
      out.dp_sync += db.CollectiveTime(CollectiveKind::kAllGather,
                                       out.param_bytes, dp_domain);
    }
  }
  return out;
}

// Longest (semantic word, layout-state) cycle the run detector looks for.
// Transformer blocks are a dozen-odd ops, so 128 covers every realistic
// repeating unit while bounding the detection scan at O(ops * 128) key
// compares for pathological non-repeating stages.
constexpr int kMaxRunPeriod = 128;

}  // namespace

int EffectiveShards(const Operator& op, int tp) {
  switch (op.tp_class) {
    case TpClass::kPartitioned:
      return tp;
    case TpClass::kShardFollower:
      return std::min(tp, FloorPow2(std::max(op.max_tp, 1)));
    case TpClass::kReplicated:
      return 1;
  }
  return 1;
}

double OptimizerMultiplier(Precision precision) {
  switch (precision) {
    case Precision::kFp16:
      return 7.0;
    case Precision::kFp32:
      return 3.0;
  }
  return 3.0;
}

PerformanceModel::PerformanceModel(const OpGraph* graph,
                                   const ClusterSpec& cluster,
                                   ProfileDatabase* db,
                                   StageCacheOptions cache_options,
                                   OpMemoOptions memo_options)
    : graph_(graph),
      cluster_(cluster),
      interconnect_(cluster),
      db_(db),
      stage_cache_(cache_options),
      op_memo_(memo_options) {
  ACESO_CHECK(graph != nullptr);
  ACESO_CHECK(db != nullptr);
  op_signatures_.reserve(static_cast<size_t>(graph->num_ops()));
  for (int i = 0; i < graph->num_ops(); ++i) {
    op_signatures_.push_back(graph->op(i).Signature());
  }
}

StageWalk PerformanceModel::WalkStage(const ParallelConfig& config,
                                      int stage_index) const {
  const StageConfig& stage = config.stage(stage_index);
  const int first_device = config.StageFirstDevice(stage_index);
  const int mbs = config.microbatch_size();
  const Precision precision = graph_->precision();

  StageWalk walk;
  walk.ops.resize(static_cast<size_t>(stage.num_ops));

  const CommDomain stage_domain{
      stage.num_devices,
      cluster_.GroupCrossesNodes(first_device, stage.num_devices, 1)};

  Layout layout;    // activations enter a stage replicated
  int prev_dp = 0;  // 0 = no previous op

  for (int i = 0; i < stage.num_ops; ++i) {
    const Operator& op = graph_->op(stage.first_op + i);
    const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
    const bool dp_mismatch = prev_dp != 0 && prev_dp != setting.dp;
    walk.ops[static_cast<size_t>(i)] =
        ComputeOpBreakdown(*db_, cluster_, op, setting, precision, mbs,
                           first_device, stage_domain, layout, dp_mismatch);
    layout = AdvanceLayout(op, setting, layout);
    prev_dp = setting.dp;
  }

  // Stage input boundary activation is always stored (it feeds either the
  // first op's backward or the recompute replay).
  {
    const Operator& first_op = graph_->op(stage.first_op);
    const OpParallel& first_setting = stage.ops[0];
    walk.boundary_bytes =
        first_op.in_bytes * static_cast<int64_t>(mbs / first_setting.dp);
  }

  // --- inter-stage p2p (charged to the receiving stage) ---
  if (stage_index > 0) {
    const Operator& first_op = graph_->op(stage.first_op);
    const bool cross =
        cluster_.NodeOf(first_device - 1) != cluster_.NodeOf(first_device);
    const double t = interconnect_.P2PTime(
        first_op.in_bytes * static_cast<int64_t>(mbs), cross);
    walk.p2p_fwd = t;
    walk.p2p_bwd = t;  // gradient flows back over the same boundary
  }
  return walk;
}

StageCost AggregateStageCost(const StageWalk& walk) {
  StageCost cost;
  // Activation accounting prices the caching allocator's block rounding
  // (§3.3: the model deliberately over- rather than under-estimates).
  cost.activation_bytes_per_mb = RoundUpAllocSize(walk.boundary_bytes);
  for (const OpBreakdown& op : walk.ops) {
    cost.fwd_time += op.fwd_kernel + op.fwd_comm;
    cost.bwd_time += op.bwd_kernel + op.bwd_comm;
    cost.comp_time += op.fwd_kernel + op.bwd_kernel;
    cost.comm_time += op.fwd_comm + op.bwd_comm;
    if (op.recompute) {
      cost.bwd_time += op.fwd_kernel;
      cost.recompute_time += op.fwd_kernel;
    }
    cost.dp_sync_time += op.dp_sync;
    if (op.stored_bytes > 0) {
      cost.activation_bytes_per_mb += RoundUpAllocSize(op.stored_bytes);
    }
    cost.param_bytes += op.param_bytes;
    cost.optimizer_bytes += op.optimizer_bytes;
    cost.reserved_bytes = std::max(cost.reserved_bytes, op.workspace_bytes);
  }
  cost.fwd_time += walk.p2p_fwd;
  cost.bwd_time += walk.p2p_bwd;
  cost.comm_time += walk.p2p_fwd + walk.p2p_bwd;
  return cost;
}

namespace {

// ----- Walk plan (DESIGN.md §12) -----
//
// Everything about one stage's walk that is independent of placement
// context (microbatch size, device count, rank within the node): per-op
// memo-key cores, the layout state entering each op, the dp-reshard bit,
// and the repeated-layer run segmentation. All of it is a pure function of
// (graph, stage settings) — exactly what the stage's word cache pins — so
// the plan is attached to that cache as a StageAnnotation and reused until
// the stage mutates. Placement context re-enters per walk: op i's memo key
// is HashCombine(base, core[i]) with `base` folding the context.
struct WalkPlan : StageAnnotation {
  struct Run {
    int start = 0;
    int period = 0;  // 0: a single op at `start` (reps unused)
    int reps = 0;
  };
  std::vector<uint64_t> core;           // per-op key core
  std::vector<Layout> layouts;          // layout entering op i
  std::vector<unsigned char> mismatch;  // dp-reshard bit entering op i
  std::vector<Run> runs;                // covers [0, num_ops) in walk order
};

// Fills `plan` for one stage. `words[i]` / `sigs[i]` are the packed
// semantic word and operator signature of the stage's i-th op; `compress`
// folds repeating runs (false yields one single-op run per op — the walk
// order with run compression disabled).
void BuildWalkPlan(const OpGraph& graph, const StageConfig& stage,
                   const uint64_t* words, const uint64_t* sigs, bool compress,
                   WalkPlan& plan) {
  const int num_ops = stage.num_ops;
  plan.core.resize(static_cast<size_t>(num_ops));
  plan.layouts.resize(static_cast<size_t>(num_ops));
  plan.mismatch.resize(static_cast<size_t>(num_ops));
  {
    Layout layout;
    int prev_dp = 0;
    for (int i = 0; i < num_ops; ++i) {
      const Operator& op = graph.op(stage.first_op + i);
      const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
      const bool dp_mismatch = prev_dp != 0 && prev_dp != setting.dp;
      plan.layouts[static_cast<size_t>(i)] = layout;
      plan.mismatch[static_cast<size_t>(i)] = dp_mismatch ? 1 : 0;
      // Memo-key core: the operator signature, packed semantic word,
      // incoming layout state, and the dp-reshard bit — together with the
      // placement base they pin every input ComputeOpBreakdown reads, so
      // equal keys mean bit-equal breakdowns. The Mix64 finalizer gives the
      // core full avalanche: sibling stages' bases differ in only a few
      // bits, and composing a *structured* core with them through one
      // HashCombine round has produced real cross-stage key collisions.
      // Mixing is bijective, so the run detector's equality scan below is
      // unaffected.
      uint64_t core = HashCombine(sigs[i], words[i]);
      core = HashCombine(core,
                         layout.sharded ? static_cast<uint64_t>(layout.tp) : 0);
      core = HashCombine(core, dp_mismatch ? 1 : 0);
      plan.core[static_cast<size_t>(i)] = Mix64(core);
      layout = AdvanceLayout(op, setting, layout);
      prev_dp = setting.dp;
    }
  }
  plan.runs.clear();
  const std::vector<uint64_t>& core = plan.core;
  int i = 0;
  while (i < num_ops) {
    // Smallest period P such that ops [i, i+P) and [i+P, i+2P) carry
    // identical cores — layout-state is folded into the core, so core
    // equality certifies that the walk state itself cycles (the run is
    // well-defined, not just similar-looking settings).
    int period = 0;
    if (compress) {
      const int max_period = std::min((num_ops - i) / 2, kMaxRunPeriod);
      for (int p = 1; p <= max_period; ++p) {
        if (core[static_cast<size_t>(i + p)] == core[static_cast<size_t>(i)] &&
            std::equal(core.begin() + i, core.begin() + i + p,
                       core.begin() + i + p)) {
          period = p;
          break;
        }
      }
    }
    if (period == 0) {
      plan.runs.push_back(WalkPlan::Run{i, 0, 0});
      ++i;
      continue;
    }
    // Count verified repetitions (every block is compared elementwise to
    // the first — no induction, each replayed block's cores are checked).
    int reps = 2;
    while (i + (reps + 1) * period <= num_ops &&
           std::equal(core.begin() + i, core.begin() + i + period,
                      core.begin() + i + reps * period)) {
      ++reps;
    }
    plan.runs.push_back(WalkPlan::Run{i, period, reps});
    i += reps * period;
  }
}

}  // namespace

StageCost PerformanceModel::ComputeStageCost(const ParallelConfig& config,
                                             int stage_index) const {
  const bool memo_on = op_memo_.enabled();
  if (!memo_on && !run_compression_) {
    return AggregateStageCost(WalkStage(config, stage_index));
  }

  const StageConfig& stage = config.stage(stage_index);
  const int num_ops = stage.num_ops;
  const int first_device = config.StageFirstDevice(stage_index);
  const int mbs = config.microbatch_size();
  const Precision precision = graph_->precision();
  const CommDomain stage_domain{
      stage.num_devices,
      cluster_.GroupCrossesNodes(first_device, stage.num_devices, 1)};

  // Per-op semantic words: reuse the stage block's cache (already paid for
  // by hashing); pack locally only in the different-graph fallback.
  const std::vector<uint64_t>* cached_words =
      config.StageOpWords(*graph_, stage_index);
  std::vector<uint64_t> local_words;
  if (cached_words == nullptr) {
    local_words.resize(static_cast<size_t>(num_ops));
    for (int i = 0; i < num_ops; ++i) {
      local_words[static_cast<size_t>(i)] = PackOpSemanticWord(
          graph_->op(stage.first_op + i), stage.ops[static_cast<size_t>(i)]);
    }
  }
  const uint64_t* words =
      cached_words != nullptr ? cached_words->data() : local_words.data();
  const uint64_t* sigs =
      op_signatures_.data() + static_cast<size_t>(stage.first_op);

  // Fetch the stage's walk plan, building and attaching it on first use.
  // The published plan is always built with compression on, and only read
  // when this model walks compressed; the memo-only walk derives a local
  // plan so both modes funnel through one consumption loop. The annotation
  // slot holds WalkPlans exclusively (this file is its only publisher), so
  // the static_cast back is safe.
  const WalkPlan* plan = nullptr;
  WalkPlan local_plan;
  if (run_compression_ && cached_words != nullptr) {
    plan = static_cast<const WalkPlan*>(
        config.StageWordAnnotation(*graph_, stage_index));
    if (plan == nullptr) {
      auto* fresh = new WalkPlan;
      BuildWalkPlan(*graph_, stage, words, sigs, /*compress=*/true, *fresh);
      plan = static_cast<const WalkPlan*>(
          config.PublishStageWordAnnotation(*graph_, stage_index, fresh));
    }
  }
  if (plan == nullptr) {
    BuildWalkPlan(*graph_, stage, words, sigs, run_compression_, local_plan);
    plan = &local_plan;
  }

  // Placement context, folded once per walk; op i's memo key is
  // HashCombine(base, core[i]) (DESIGN.md §12).
  const uint64_t base = Hasher()
                            .Add(mbs)
                            .Add(stage.num_devices)
                            .Add(first_device % cluster_.gpus_per_node)
                            .Digest();

  // One op's breakdown: memo hit, or derive (into `tmp`) and publish.
  OpBreakdown scratch;
  auto breakdown_at = [&](int i, OpBreakdown& tmp) -> const OpBreakdown* {
    const uint64_t key =
        HashCombine(base, plan->core[static_cast<size_t>(i)]);
    if (memo_on) {
      if (const OpBreakdown* hit = op_memo_.Lookup(key)) {
        return hit;
      }
    }
    tmp = ComputeOpBreakdown(*db_, cluster_, graph_->op(stage.first_op + i),
                             stage.ops[static_cast<size_t>(i)], precision, mbs,
                             first_device, stage_domain,
                             plan->layouts[static_cast<size_t>(i)],
                             plan->mismatch[static_cast<size_t>(i)] != 0);
    if (memo_on) {
      if (const OpBreakdown* published = op_memo_.Insert(key, tmp)) {
        return published;
      }
    }
    return &tmp;
  };

  // Bit-exactness contract: this function must reproduce
  // AggregateStageCost(WalkStage(...)) exactly. Integer fields are
  // aggregated analytically (integer arithmetic is associative), but the
  // double accumulators replay the direct walk's addition sequence with
  // bit-equal per-op values — IEEE addition is not associative, so a run
  // may not be "multiplied out" without perturbing golden-pinned results.
  StageCost cost;
  {
    const Operator& first_op = graph_->op(stage.first_op);
    const int64_t boundary_bytes =
        first_op.in_bytes * static_cast<int64_t>(mbs / stage.ops[0].dp);
    cost.activation_bytes_per_mb = RoundUpAllocSize(boundary_bytes);
  }
  auto accumulate = [&cost](const OpBreakdown& op) {
    cost.fwd_time += op.fwd_kernel + op.fwd_comm;
    cost.bwd_time += op.bwd_kernel + op.bwd_comm;
    cost.comp_time += op.fwd_kernel + op.bwd_kernel;
    cost.comm_time += op.fwd_comm + op.bwd_comm;
    if (op.recompute) {
      cost.bwd_time += op.fwd_kernel;
      cost.recompute_time += op.fwd_kernel;
    }
    cost.dp_sync_time += op.dp_sync;
    if (op.stored_bytes > 0) {
      cost.activation_bytes_per_mb += RoundUpAllocSize(op.stored_bytes);
    }
    cost.param_bytes += op.param_bytes;
    cost.optimizer_bytes += op.optimizer_bytes;
    cost.reserved_bytes = std::max(cost.reserved_bytes, op.workspace_bytes);
  };

  // One materialized op of a repeating period: the per-op inner sums
  // (fwd_kernel + fwd_comm etc.) are precomputed once — they are
  // sub-expressions of the direct walk, so reusing their bits across
  // repetitions is exact — and the replay loop performs the same
  // accumulator additions, in the same order, as the direct walk would.
  struct RunOp {
    double fwd = 0.0;
    double bwd = 0.0;
    double comp = 0.0;
    double comm = 0.0;
    double fwd_kernel = 0.0;
    double dp_sync = 0.0;
    bool recompute = false;
  };
  std::vector<RunOp> block;

  for (const WalkPlan::Run& run : plan->runs) {
    if (run.period == 0) {
      accumulate(*breakdown_at(run.start, scratch));
      continue;
    }
    block.clear();
    block.reserve(static_cast<size_t>(run.period));
    int64_t act_sum = 0;
    int64_t param_sum = 0;
    int64_t opt_sum = 0;
    int64_t max_workspace = 0;
    for (int j = 0; j < run.period; ++j) {
      const OpBreakdown& op = *breakdown_at(run.start + j, scratch);
      RunOp run_op;
      run_op.fwd = op.fwd_kernel + op.fwd_comm;
      run_op.bwd = op.bwd_kernel + op.bwd_comm;
      run_op.comp = op.fwd_kernel + op.bwd_kernel;
      run_op.comm = op.fwd_comm + op.bwd_comm;
      run_op.fwd_kernel = op.fwd_kernel;
      run_op.dp_sync = op.dp_sync;
      run_op.recompute = op.recompute;
      block.push_back(run_op);
      if (op.stored_bytes > 0) {
        act_sum += RoundUpAllocSize(op.stored_bytes);
      }
      param_sum += op.param_bytes;
      opt_sum += op.optimizer_bytes;
      max_workspace = std::max(max_workspace, op.workspace_bytes);
    }
    for (int r = 0; r < run.reps; ++r) {
      for (const RunOp& op : block) {
        cost.fwd_time += op.fwd;
        cost.bwd_time += op.bwd;
        cost.comp_time += op.comp;
        cost.comm_time += op.comm;
        if (op.recompute) {
          cost.bwd_time += op.fwd_kernel;
          cost.recompute_time += op.fwd_kernel;
        }
        cost.dp_sync_time += op.dp_sync;
      }
    }
    cost.activation_bytes_per_mb += act_sum * run.reps;
    cost.param_bytes += param_sum * run.reps;
    cost.optimizer_bytes += opt_sum * run.reps;
    cost.reserved_bytes = std::max(cost.reserved_bytes, max_workspace);
  }

  // Inter-stage p2p, mirroring the WalkStage tail + AggregateStageCost.
  if (stage_index > 0) {
    const Operator& first_op = graph_->op(stage.first_op);
    const bool cross =
        cluster_.NodeOf(first_device - 1) != cluster_.NodeOf(first_device);
    const double t = interconnect_.P2PTime(
        first_op.in_bytes * static_cast<int64_t>(mbs), cross);
    cost.fwd_time += t;
    cost.bwd_time += t;
    cost.comm_time += t + t;
  }
  return cost;
}

PerfResult PerformanceModel::Evaluate(const ParallelConfig& config) const {
  eval_count_.fetch_add(1, std::memory_order_relaxed);

  const int p = config.num_stages();
  const int64_t num_microbatches = config.NumMicrobatches(*graph_);

  PerfResult result;
  result.memory_limit = cluster_.gpu.memory_bytes;
  result.stages.resize(static_cast<size_t>(p));

  for (int s = 0; s < p; ++s) {
    // Incremental path: reuse the memoized cost when this stage (including
    // its placement context) has been walked before — by this evaluation's
    // predecessor, or by a sibling search sharing the model.
    std::shared_ptr<const StageCost> cached;
    StageCost local;
    if (stage_cache_.enabled()) {
      const uint64_t key = config.StageSemanticHash(*graph_, cluster_, s);
      cached = stage_cache_.Lookup(key);
      if (cached == nullptr) {
        cached = std::make_shared<const StageCost>(ComputeStageCost(config, s));
        stage_cache_.Insert(key, cached);
      }
    } else {
      local = ComputeStageCost(config, s);
    }
    const StageCost& cost = cached != nullptr ? *cached : local;
    StageUsage& usage = result.stages[static_cast<size_t>(s)];

    usage.fwd_time = cost.fwd_time;
    usage.bwd_time = cost.bwd_time;
    usage.comp_time = cost.comp_time;
    usage.comm_time = cost.comm_time;
    usage.recompute_time = cost.recompute_time;
    usage.dp_sync_time = cost.dp_sync_time;
    usage.param_bytes = cost.param_bytes;
    usage.optimizer_bytes = cost.optimizer_bytes;
    usage.activation_bytes_per_mb = cost.activation_bytes_per_mb;
    usage.reserved_bytes = cost.reserved_bytes;
    const int in_flight = std::max(1, p - s);  // 1F1B in-flight microbatches
    usage.memory_bytes = cost.param_bytes + cost.optimizer_bytes +
                         cost.activation_bytes_per_mb * in_flight +
                         cost.reserved_bytes;
  }

  // --- Eq. 2: stage times and iteration time ---
  double warmup_prefix = 0.0;    // sum of f_j for j < s
  double cooldown_prefix = 0.0;  // sum of b_j for j < s
  for (int s = 0; s < p; ++s) {
    StageUsage& usage = result.stages[static_cast<size_t>(s)];
    usage.warmup_time = warmup_prefix;
    usage.cooldown_time = cooldown_prefix;
    usage.steady_time = static_cast<double>(num_microbatches) *
                        (usage.fwd_time + usage.bwd_time);
    usage.stage_time = usage.warmup_time + usage.steady_time +
                       usage.cooldown_time + usage.dp_sync_time;
    warmup_prefix += usage.fwd_time;
    cooldown_prefix += usage.bwd_time;
  }

  double max_time = -1.0;
  int64_t max_mem = -1;
  for (int s = 0; s < p; ++s) {
    const StageUsage& usage = result.stages[static_cast<size_t>(s)];
    if (usage.stage_time > max_time) {
      max_time = usage.stage_time;
      result.slowest_stage = s;
    }
    if (usage.memory_bytes > max_mem) {
      max_mem = usage.memory_bytes;
      result.max_memory_stage = s;
    }
  }
  result.iteration_time = max_time;
  result.oom = max_mem > result.memory_limit;
  return result;
}

}  // namespace aceso
