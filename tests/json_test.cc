#include "src/common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace aceso {
namespace {

// ----- Escaping -----

TEST(JsonEscapeTest, PlainTextPassesThrough) {
  EXPECT_EQ(JsonEscape("gpt3-1.3b @8gpu"), "gpt3-1.3b @8gpu");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscapeTest, EscapesNamedControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(JsonEscapeTest, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string("\0", 1)), "\\u0000");
}

TEST(JsonEscapeTest, Utf8BytesPassThrough) {
  // Multi-byte UTF-8 sequences are legal JSON string content as-is.
  EXPECT_EQ(JsonEscape("gpu\xc3\xa9"), "gpu\xc3\xa9");
}

TEST(JsonEscapeTest, EscapedStringsValidateInsideDocuments) {
  // Round-trip: any byte soup, once escaped and quoted, must parse.
  const std::string adversarial =
      "\"quotes\" \\back\\slashes\\ \nnew\rlines\t\x01\x02\x1f end";
  const std::string doc = "{\"name\":\"" + JsonEscape(adversarial) + "\"}";
  const Status status = JsonValidate(doc);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// ----- Number formatting -----

TEST(JsonNumberTest, FormatsIntegralDoublesWithoutExponent) {
  std::string out;
  AppendJsonNumber(out, 2000000.0);
  EXPECT_EQ(out, "2000000");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  std::string out;
  AppendJsonNumber(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  out.clear();
  AppendJsonNumber(out, std::nan(""));
  EXPECT_EQ(out, "null");
}

TEST(JsonNumberTest, OutputAlwaysValidates) {
  for (const double v : {0.0, -0.0, 1.5, -2.25, 1e-9, 1e21, -1e300,
                         22.649582163995891, 1e12 + 3.5}) {
    std::string out;
    AppendJsonNumber(out, v);
    const Status status = JsonValidate(out);
    EXPECT_TRUE(status.ok()) << out << ": " << status.ToString();
  }
}

// ----- Validator -----

TEST(JsonValidateTest, AcceptsWellFormedDocuments) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           "-12.5e-3",
           "\"plain\"",
           R"({"a":[1,2,{"b":null}],"c":"\u00e9\n"})",
           "  [1, 2, 3]  ",
       }) {
    const Status status = JsonValidate(doc);
    EXPECT_TRUE(status.ok()) << doc << ": " << status.ToString();
  }
}

TEST(JsonValidateTest, RejectsMalformedDocuments) {
  for (const char* doc : {
           "",
           "{",
           "[1,]",
           "{\"a\":}",
           "{\"a\" 1}",
           "{a:1}",
           "01",
           "1.",
           "1e",
           "+1",
           "nul",
           "\"unterminated",
           "\"bad escape \\q\"",
           "\"raw \n newline\"",
           "\"short \\u12 hex\"",
           "[1] trailing",
           "[1][2]",
       }) {
    EXPECT_FALSE(JsonValidate(doc).ok()) << "accepted: " << doc;
  }
}

TEST(JsonValidateTest, ErrorsCarryByteOffset) {
  const Status status = JsonValidate("[1, x]");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("byte 4"), std::string::npos)
      << status.ToString();
}

TEST(JsonValidateTest, DeepNestingIsBounded) {
  // 300 nested arrays exceeds kMaxDepth (256): rejected, not a stack
  // overflow.
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(JsonValidate(deep).ok());
}

}  // namespace
}  // namespace aceso
