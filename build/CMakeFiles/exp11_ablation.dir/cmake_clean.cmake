file(REMOVE_RECURSE
  "CMakeFiles/exp11_ablation.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp11_ablation.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp11_ablation.dir/bench/exp11_ablation.cc.o"
  "CMakeFiles/exp11_ablation.dir/bench/exp11_ablation.cc.o.d"
  "bench/exp11_ablation"
  "bench/exp11_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
