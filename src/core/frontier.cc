#include "src/core/frontier.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/config/config_io.h"

namespace aceso {

double CostPerStepUsd(double iteration_time, int num_gpus,
                      double price_per_hour_usd) {
  return iteration_time * static_cast<double>(num_gpus) * price_per_hour_usd /
         3600.0;
}

namespace {

// First archived point with peak memory >= `bytes` (points are sorted by
// peak memory strictly ascending).
std::vector<FrontierPoint>::iterator LowerBoundMem(
    std::vector<FrontierPoint>& points, int64_t bytes) {
  return std::lower_bound(points.begin(), points.end(), bytes,
                          [](const FrontierPoint& p, int64_t b) {
                            return p.peak_memory_bytes < b;
                          });
}

}  // namespace

bool FrontierArchive::Offer(const ParallelConfig& config,
                            const PerfResult& perf, uint64_t semantic_hash,
                            double cost_per_step_usd) {
  FrontierPoint point;
  point.iteration_time = perf.iteration_time;
  point.peak_memory_bytes = perf.MaxMemory();
  point.cost_per_step_usd = cost_per_step_usd;
  point.semantic_hash = semantic_hash;
  point.num_stages = config.num_stages();
  point.microbatch_size = config.microbatch_size();
  point.feasible = !perf.oom;
  point.config = config;  // cheap CoW handle copy
  return OfferPoint(point);
}

bool FrontierArchive::OfferPoint(const FrontierPoint& point) {
  ++stats_.offered;
  if (!std::isfinite(point.iteration_time) || point.iteration_time <= 0.0 ||
      point.peak_memory_bytes < 0) {
    ++stats_.rejected;
    return false;
  }
  if (hashes_.count(point.semantic_hash) != 0) {
    ++stats_.duplicates;
    return false;
  }
  // Weak-dominance check: the archived point with the largest peak memory
  // <= point's (its memory-wise predecessor) is the fastest archived point
  // that fits wherever the candidate fits. If even that one is no slower,
  // the candidate adds nothing (equal metrics keep the incumbent — first
  // offer wins, deterministically).
  auto pos = LowerBoundMem(points_, point.peak_memory_bytes + 1);
  if (pos != points_.begin() &&
      std::prev(pos)->iteration_time <= point.iteration_time) {
    ++stats_.dominated;
    return false;
  }
  // Admission: evict archived points the candidate weakly dominates. Those
  // have peak memory >= the candidate's and iteration time >= its time;
  // with times strictly descending they form a contiguous run starting at
  // the first point with memory >= the candidate's.
  auto first = LowerBoundMem(points_, point.peak_memory_bytes);
  auto last = first;
  while (last != points_.end() &&
         last->iteration_time >= point.iteration_time) {
    hashes_.erase(last->semantic_hash);
    ++stats_.evicted;
    ++last;
  }
  auto at = points_.erase(first, last);
  points_.insert(at, point);
  hashes_.insert(point.semantic_hash);
  ++stats_.admitted;
  return true;
}

void FrontierArchive::Merge(const FrontierArchive& other) {
  for (const FrontierPoint& point : other.points_) {
    OfferPoint(point);
  }
}

const FrontierPoint* FrontierArchive::BestUnderBudget(
    int64_t budget_bytes) const {
  auto& points = const_cast<std::vector<FrontierPoint>&>(points_);
  auto pos = LowerBoundMem(points, budget_bytes + 1);
  if (pos == points.begin()) {
    return nullptr;  // even the smallest archived config does not fit
  }
  return &*std::prev(pos);
}

std::string FrontierArchive::ToJson(const std::string& model_name) const {
  std::string out = "{\"points\":[";
  bool first = true;
  for (const FrontierPoint& p : points_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"iteration_time\":";
    AppendJsonNumber(out, p.iteration_time);
    out += ",\"peak_memory_bytes\":" + std::to_string(p.peak_memory_bytes);
    out += ",\"cost_per_step_usd\":";
    AppendJsonNumber(out, p.cost_per_step_usd);
    // Hex string: uint64 hashes can exceed the exact-int64 range JSON
    // numbers round-trip safely.
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, p.semantic_hash);
    out += ",\"semantic_hash\":\"";
    out += hex;
    out += "\",\"num_stages\":" + std::to_string(p.num_stages);
    out += ",\"microbatch_size\":" + std::to_string(p.microbatch_size);
    out += ",\"feasible\":";
    out += p.feasible ? "true" : "false";
    out += ",\"config_text\":\"";
    if (!p.config_text.empty()) {
      AppendJsonEscaped(out, p.config_text);
    } else if (p.config.num_stages() > 0) {
      AppendJsonEscaped(out, SerializeConfig(p.config, model_name));
    }
    out += "\"}";
  }
  out += "],\"offered\":" + std::to_string(stats_.offered);
  out += ",\"admitted\":" + std::to_string(stats_.admitted);
  out += ",\"dominated\":" + std::to_string(stats_.dominated);
  out += ",\"duplicates\":" + std::to_string(stats_.duplicates);
  out += ",\"rejected\":" + std::to_string(stats_.rejected);
  out += ",\"evicted\":" + std::to_string(stats_.evicted);
  out += '}';
  return out;
}

namespace {

Status PointError(size_t index, const std::string& what) {
  return InvalidArgument("frontier point " + std::to_string(index) +
                              ": " + what);
}

StatusOr<int64_t> TakeCounter(const JsonValue& value, const char* key) {
  const JsonValue* member = value.Find(key);
  if (member == nullptr) {
    return int64_t{0};
  }
  if (!member->is_number() || !member->number_is_int() ||
      member->int_value() < 0) {
    return InvalidArgument(std::string("frontier counter '") + key +
                                "' must be a non-negative integer");
  }
  return member->int_value();
}

}  // namespace

StatusOr<FrontierArchive> FrontierArchive::FromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return InvalidArgument("frontier must be a JSON object");
  }
  const JsonValue* points = value.Find("points");
  if (points == nullptr || !points->is_array()) {
    return InvalidArgument("frontier is missing the 'points' array");
  }
  FrontierArchive archive;
  for (size_t i = 0; i < points->size(); ++i) {
    const JsonValue& item = points->item(i);
    if (!item.is_object()) {
      return PointError(i, "must be an object");
    }
    FrontierPoint p;
    const JsonValue* time = item.Find("iteration_time");
    if (time == nullptr || !time->is_number()) {
      return PointError(i, "missing numeric 'iteration_time'");
    }
    p.iteration_time = time->number_value();
    if (!std::isfinite(p.iteration_time) || p.iteration_time <= 0.0) {
      return PointError(i, "'iteration_time' must be finite and positive");
    }
    const JsonValue* mem = item.Find("peak_memory_bytes");
    if (mem == nullptr || !mem->is_number() || !mem->number_is_int() ||
        mem->int_value() < 0) {
      return PointError(i, "missing non-negative integer 'peak_memory_bytes'");
    }
    p.peak_memory_bytes = mem->int_value();
    const JsonValue* cost = item.Find("cost_per_step_usd");
    if (cost == nullptr || !cost->is_number()) {
      return PointError(i, "missing numeric 'cost_per_step_usd'");
    }
    p.cost_per_step_usd = cost->number_value();
    const JsonValue* hash = item.Find("semantic_hash");
    if (hash == nullptr || !hash->is_string() ||
        hash->string_value().empty()) {
      return PointError(i, "missing hex string 'semantic_hash'");
    }
    char* end = nullptr;
    p.semantic_hash =
        std::strtoull(hash->string_value().c_str(), &end, /*base=*/16);
    if (end == nullptr || *end != '\0') {
      return PointError(i, "'semantic_hash' is not a hex string");
    }
    const JsonValue* stages = item.Find("num_stages");
    if (stages == nullptr || !stages->is_number() ||
        !stages->number_is_int()) {
      return PointError(i, "missing integer 'num_stages'");
    }
    p.num_stages = static_cast<int>(stages->int_value());
    const JsonValue* mbs = item.Find("microbatch_size");
    if (mbs == nullptr || !mbs->is_number() || !mbs->number_is_int()) {
      return PointError(i, "missing integer 'microbatch_size'");
    }
    p.microbatch_size = static_cast<int>(mbs->int_value());
    const JsonValue* feasible = item.Find("feasible");
    if (feasible == nullptr || !feasible->is_bool()) {
      return PointError(i, "missing boolean 'feasible'");
    }
    p.feasible = feasible->bool_value();
    const JsonValue* text = item.Find("config_text");
    if (text == nullptr || !text->is_string()) {
      return PointError(i, "missing string 'config_text'");
    }
    p.config_text = text->string_value();
    // Enforce the Pareto invariant against the previous point: a document
    // whose points are unsorted or dominated is corrupt and must not be
    // used to answer budget sweeps.
    if (!archive.points_.empty()) {
      const FrontierPoint& prev = archive.points_.back();
      if (p.peak_memory_bytes <= prev.peak_memory_bytes ||
          p.iteration_time >= prev.iteration_time) {
        return PointError(i, "violates the Pareto ordering invariant");
      }
    }
    if (!archive.hashes_.insert(p.semantic_hash).second) {
      return PointError(i, "duplicate semantic hash");
    }
    archive.points_.push_back(std::move(p));
  }
  struct CounterSlot {
    const char* key;
    int64_t* slot;
  };
  const CounterSlot counters[] = {
      {"offered", &archive.stats_.offered},
      {"admitted", &archive.stats_.admitted},
      {"dominated", &archive.stats_.dominated},
      {"duplicates", &archive.stats_.duplicates},
      {"rejected", &archive.stats_.rejected},
      {"evicted", &archive.stats_.evicted},
  };
  for (const CounterSlot& counter : counters) {
    StatusOr<int64_t> parsed = TakeCounter(value, counter.key);
    if (!parsed.ok()) {
      return parsed.status();
    }
    *counter.slot = *parsed;
  }
  return archive;
}

}  // namespace aceso
