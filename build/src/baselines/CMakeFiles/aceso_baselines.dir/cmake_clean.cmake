file(REMOVE_RECURSE
  "CMakeFiles/aceso_baselines.dir/alpa_like.cc.o"
  "CMakeFiles/aceso_baselines.dir/alpa_like.cc.o.d"
  "CMakeFiles/aceso_baselines.dir/dp_solver.cc.o"
  "CMakeFiles/aceso_baselines.dir/dp_solver.cc.o.d"
  "CMakeFiles/aceso_baselines.dir/megatron.cc.o"
  "CMakeFiles/aceso_baselines.dir/megatron.cc.o.d"
  "libaceso_baselines.a"
  "libaceso_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
