#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace aceso {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unchanged
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(out, s);
  return out;
}

void AppendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  out += buf;
}

namespace {

// Single-pass recursive-descent validator over the RFC 8259 grammar.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  Status Run() {
    SkipWs();
    Status s = Value(/*depth=*/0);
    if (!s.ok()) {
      return s;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return OkStatus();
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& what) const {
    return InvalidArgument("JSON: " + what + " at byte " +
                           std::to_string(pos_));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (!Eof() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    if (Eof()) {
      return Error("unexpected end of input, expected a value");
    }
    switch (Peek()) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return OkStatus();
  }

  Status Object(int depth) {
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) {
      return OkStatus();
    }
    while (true) {
      SkipWs();
      if (Eof() || Peek() != '"') {
        return Error("expected object key string");
      }
      Status s = String();
      if (!s.ok()) {
        return s;
      }
      SkipWs();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      SkipWs();
      s = Value(depth + 1);
      if (!s.ok()) {
        return s;
      }
      SkipWs();
      if (Consume('}')) {
        return OkStatus();
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  Status Array(int depth) {
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) {
      return OkStatus();
    }
    while (true) {
      SkipWs();
      Status s = Value(depth + 1);
      if (!s.ok()) {
        return s;
      }
      SkipWs();
      if (Consume(']')) {
        return OkStatus();
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Status String() {
    ++pos_;  // opening '"'
    while (true) {
      if (Eof()) {
        return Error("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return OkStatus();
      }
      if (c < 0x20) {
        return Error("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (Eof()) {
          return Error("unterminated escape");
        }
        const char e = text_[pos_];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (Eof() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Error("\\u escape needs 4 hex digits");
            }
            ++pos_;
          }
        } else {
          return Error("invalid escape character");
        }
      } else {
        ++pos_;
      }
    }
  }

  Status Number() {
    Consume('-');
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("expected digit");
    }
    if (Peek() == '0') {
      ++pos_;
      if (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("leading zero in number");
      }
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected digit after decimal point");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) {
        ++pos_;
      }
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected digit in exponent");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return OkStatus();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status JsonValidate(std::string_view text) { return Validator(text).Run(); }

}  // namespace aceso
