// Parallel DNN training configuration (§3.1 "Configuration representation").
//
// A configuration partitions the model's operator chain into contiguous
// pipeline stages, assigns each stage a contiguous device range, gives every
// operator a (tp, dp) pair with tp*dp == stage devices, a tensor-parallel
// partition dimension, and a recompute flag, and fixes one global microbatch
// size. This representation can express Megatron-LM and Alpa configurations
// (uniform settings) as well as Aceso's heterogeneous per-op plans.
//
// Copy-on-write representation. The search constructs tens of thousands of
// candidate configurations per second, and each Table-1 primitive mutates
// only one or two stages, so stages are stored as shared, logically
// immutable blocks (StageBlock): copying a ParallelConfig copies #stages
// pointers, and MutableStage(i) clones stage i on first write while every
// untouched stage stays shared with the parent. Each block lazily caches the
// packed per-op hash words of its stage, and the config carries an
// incremental prefix of its whole-config semantic hash, so re-hashing a
// candidate recomputes only the mutated stages — the cached-hash values are
// bit-identical to the from-scratch *Uncached reference implementations.
//
// Mutation contract: MutableStage(i) (and MutableOpSettings, which routes
// through it) requires exclusive access to the config, and the returned
// reference is a short-lived mutation handle — finish mutating before the
// config is copied, hashed, or shared. Hashing (SemanticHash,
// StageSemanticHash, Evaluate) is safe concurrently on the same config from
// multiple threads once mutation has stopped.

#ifndef SRC_CONFIG_PARALLEL_CONFIG_H_
#define SRC_CONFIG_PARALLEL_CONFIG_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/cluster.h"
#include "src/ir/op_graph.h"

namespace aceso {

// Per-operator parallelism settings.
struct OpParallel {
  int tp = 1;                     // tensor-parallel degree
  int dp = 1;                     // data-parallel degree (tp*dp = stage GPUs)
  TpDim tp_dim = TpDim::kColumn;  // partition dimension when tp > 1
  bool recompute = false;         // release output, re-run fwd during bwd
  // Extension (inc-zero/dec-zero primitives): ZeRO-style sharding of the
  // op's optimizer state across its dp group — less memory, an extra
  // parameter all-gather per iteration. Only meaningful when dp > 1.
  bool zero_opt = false;

  bool operator==(const OpParallel& other) const {
    return tp == other.tp && dp == other.dp && tp_dim == other.tp_dim &&
           recompute == other.recompute && zero_opt == other.zero_opt;
  }
};

// One pipeline stage: a contiguous op range on a contiguous device range.
struct StageConfig {
  int first_op = 0;
  int num_ops = 0;
  int num_devices = 1;
  std::vector<OpParallel> ops;  // size == num_ops

  int end_op() const { return first_op + num_ops; }

  // Applies (tp, dp, dim) to every op in the stage, clamping tp at each op's
  // max_tp (dp absorbs the difference). Recompute flags are preserved.
  void SetUniformParallelism(const OpGraph& graph, int tp, int dp);

  // Count of recomputed ops in this stage.
  int NumRecomputed() const;
};

// Packs one op's semantic settings into a single hash word, canonicalizing
// fields that do not affect semantics (partition dimensions at tp == 1,
// ZeRO flags at dp == 1). Every semantic hash in the system — whole-config,
// per-stage cache key, cached or from-scratch — folds exactly these words,
// so no two consumers can ever disagree about what a setting means.
uint64_t PackOpSemanticWord(const Operator& op, const OpParallel& setting);

// Opaque payload a higher layer attaches to a stage's word cache — in
// practice the cost model's walk plan (DESIGN.md §12): per-op data derived
// purely from (graph, stage settings), exactly what the word cache already
// pins. The annotation shares the word cache's lifetime: it is dropped when
// the stage is mutated and rebuilt lazily afterwards, so a published
// annotation is always consistent with the published words.
class StageAnnotation {
 public:
  virtual ~StageAnnotation() = default;
};

// A shareable pipeline-stage block: the stage data plus a lazily computed
// cache of its packed per-op hash words. Blocks are logically immutable
// while shared; ParallelConfig::MutableStage() clones a shared block before
// handing out mutable access (copy-on-write). The word cache is computed on
// first hash for a given graph and published once (lock-free); concurrent
// hashing of a shared block is safe, concurrent mutation is not (see the
// mutation contract above).
class StageBlock {
 public:
  explicit StageBlock(StageConfig config) : config_(std::move(config)) {}
  // Copies the stage data only; the clone starts with a cold word cache.
  StageBlock(const StageBlock& other) : config_(other.config_) {}
  StageBlock& operator=(const StageBlock&) = delete;
  ~StageBlock();

  const StageConfig& config() const { return config_; }

  // Mutable access for the owning config; drops the cached words (the
  // caller is about to change what they hash to).
  StageConfig& BeginMutation();

  // Folds this stage's packed op words into `state` with HashCombine — the
  // shared inner loop of SemanticHash and StageSemanticHash. Computes and
  // caches the words on first use for `graph`; cached folds touch no
  // Operator data at all.
  uint64_t FoldOpWords(const OpGraph& graph, uint64_t state) const;

  // The cached per-op semantic words for `graph` (one PackOpSemanticWord()
  // per op, in stage order), computing and publishing them on first use via
  // the same publish-once protocol FoldOpWords uses. The returned pointer is
  // stable until the block is mutated or destroyed. Returns nullptr when a
  // cache for a *different* graph is already published (callers fall back to
  // computing words locally) — in practice a block only ever meets one
  // graph, so this is the correctness path, not the fast path.
  const std::vector<uint64_t>* OpWords(const OpGraph& graph) const;

  // The annotation attached to this block's word cache for `graph`, or
  // nullptr when no words (or words for a different graph) are published.
  const StageAnnotation* Annotation(const OpGraph& graph) const;

  // Publish-once attach, taking ownership of `annotation` in every case:
  // returns the surviving annotation — the argument if this call won the
  // race, the incumbent if a concurrent reader published first (the
  // argument is freed) — or nullptr (argument freed) when no word cache for
  // `graph` is published to hang it on.
  const StageAnnotation* PublishAnnotation(const OpGraph& graph,
                                           StageAnnotation* annotation) const;

 private:
  struct WordCache {
    ~WordCache() { delete annotation.load(std::memory_order_acquire); }
    const OpGraph* graph = nullptr;
    std::vector<uint64_t> words;  // one PackOpSemanticWord() per op
    // See StageAnnotation: publish-once, freed with the cache.
    mutable std::atomic<const StageAnnotation*> annotation{nullptr};
  };

  static void ComputeWords(const OpGraph& graph, const StageConfig& config,
                           std::vector<uint64_t>& words);

  StageConfig config_;
  mutable std::atomic<const WordCache*> words_{nullptr};
  // Invalidated cache parked by BeginMutation() for buffer reuse: the next
  // recompute refills it instead of allocating. Stolen with an atomic
  // exchange, so concurrent post-mutation readers race safely (losers
  // allocate fresh).
  mutable std::atomic<WordCache*> spare_{nullptr};
};

class ParallelConfig {
 public:
  ParallelConfig();
  ParallelConfig(const ParallelConfig& other);
  ParallelConfig& operator=(const ParallelConfig& other);
  ParallelConfig(ParallelConfig&& other) noexcept;
  ParallelConfig& operator=(ParallelConfig&& other) noexcept;

  int microbatch_size() const { return microbatch_size_; }
  void set_microbatch_size(int mbs);

  int num_stages() const { return static_cast<int>(stages_.size()); }
  const StageConfig& stage(int i) const {
    return stages_.at(static_cast<size_t>(i))->config();
  }

  // Copy-on-write mutator: clones stage i's block if it is shared with
  // another config, invalidates the hash caches from stage i on, and
  // returns the (now uniquely owned) stage for in-place mutation. See the
  // mutation contract in the file header.
  StageConfig& MutableStage(int i);

  // Appends a stage (configuration builders).
  void AddStage(StageConfig stage);

  // Lightweight range view over the stages, yielding const StageConfig&:
  //   for (const StageConfig& stage : config.stages()) ...
  class StageView {
   public:
    class Iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = StageConfig;
      using difference_type = std::ptrdiff_t;
      using pointer = const StageConfig*;
      using reference = const StageConfig&;

      const StageConfig& operator*() const { return (*it_)->config(); }
      const StageConfig* operator->() const { return &(*it_)->config(); }
      Iterator& operator++() {
        ++it_;
        return *this;
      }
      bool operator==(const Iterator& other) const { return it_ == other.it_; }
      bool operator!=(const Iterator& other) const { return it_ != other.it_; }

     private:
      friend class StageView;
      explicit Iterator(const std::shared_ptr<StageBlock>* it) : it_(it) {}
      const std::shared_ptr<StageBlock>* it_;
    };

    Iterator begin() const { return Iterator(blocks_->data()); }
    Iterator end() const { return Iterator(blocks_->data() + blocks_->size()); }
    size_t size() const { return blocks_->size(); }
    bool empty() const { return blocks_->empty(); }

   private:
    friend class ParallelConfig;
    explicit StageView(const std::vector<std::shared_ptr<StageBlock>>* blocks)
        : blocks_(blocks) {}
    const std::vector<std::shared_ptr<StageBlock>>* blocks_;
  };
  StageView stages() const { return StageView(&stages_); }

  // A copy that shares no stage blocks with this config and starts with
  // cold hash caches — the pre-CoW copy semantics. Benchmarks use it as the
  // deep-copy baseline; tests use it to build guaranteed-unshared configs.
  ParallelConfig DeepCopy() const;

  // First global device index of stage i (stages occupy contiguous ranges in
  // stage order).
  int StageFirstDevice(int stage_index) const;

  // Sum of per-stage device counts.
  int TotalDevices() const;

  // The per-op settings for global op index `op_index`.
  const OpParallel& OpSettings(int op_index) const;
  // Mutable per-op settings; clones the owning stage first (CoW).
  OpParallel& MutableOpSettings(int op_index);

  // Stage that owns global op `op_index`.
  int StageOfOp(int op_index) const;

  // Number of microbatches per iteration for `graph` (batch / mbs).
  int64_t NumMicrobatches(const OpGraph& graph) const;

  // Structural + semantic validation against a model and cluster:
  // contiguous full coverage, device counts match the cluster, power-of-two
  // tp/dp with tp*dp == stage devices, tp within per-op limits, microbatch
  // divisibility. Returns the first violation found.
  Status Validate(const OpGraph& graph, const ClusterSpec& cluster) const;

  // Configuration-semantic hash for deduplication (§4.3): equal iff the
  // stage partition, per-op settings, and microbatch size are equal.
  // Partition dimensions of ops whose tp == 1 are canonicalized away.
  // Incremental: the fold state after each stage is cached, so re-hashing
  // after a localized mutation recombines the cached prefix with the
  // mutated stages' (cached-word) folds instead of re-walking every op.
  // Bit-identical to SemanticHashUncached() always.
  uint64_t SemanticHash(const OpGraph& graph) const;

  // Key for the incremental stage-cost cache: hashes everything
  // PerformanceModel::WalkStage() reads for stage `stage_index` — the op
  // range, per-op settings (canonicalized like SemanticHash), microbatch
  // size, stage width, and the stage's device-placement context. On the
  // homogeneous-node cluster model, every topology question the walk asks
  // (collective node-crossing, inter-stage p2p link class) is a function of
  // the stage's first-device offset within its node and whether the stage
  // receives pipeline input at all, so those two facts are the entire
  // placement context. Keys are only comparable within one (graph, cluster)
  // pair — exactly the lifetime of a PerformanceModel. Reuses the stage
  // block's cached op words, so key derivation for an unmutated stage does
  // no per-op work beyond one HashCombine per op.
  uint64_t StageSemanticHash(const OpGraph& graph, const ClusterSpec& cluster,
                             int stage_index) const;

  // Identity of stage `stage_index`'s copy-on-write block. Equal identities
  // mean the two stages *are* one shared immutable StageBlock — same stage
  // data, same word cache, same annotation — which is how the batched group
  // evaluator (src/cost/batch_eval) detects in O(1) that sibling candidates
  // share an unmutated stage. Unequal identities promise nothing: two
  // distinct blocks may still hold equal stage data (the stage-cost cache
  // catches that case by hash). Valid until this config is mutated.
  const void* StageBlockIdentity(int stage_index) const {
    return stages_.at(static_cast<size_t>(stage_index)).get();
  }

  // The per-op semantic words of stage `stage_index` for `graph`, served
  // from the stage block's word cache (computed and published on first use).
  // This is how the performance model's op-breakdown memo keys reuse the
  // words already paid for by hashing instead of re-packing per walk.
  // Returns nullptr in the different-graph fallback case (see
  // StageBlock::OpWords); callers then pack words themselves.
  const std::vector<uint64_t>* StageOpWords(const OpGraph& graph,
                                            int stage_index) const;

  // Pass-throughs to StageBlock::Annotation / PublishAnnotation for stage
  // `stage_index` (see StageAnnotation): derived-data cache slot whose
  // lifetime is tied to the stage's word cache.
  const StageAnnotation* StageWordAnnotation(const OpGraph& graph,
                                             int stage_index) const;
  const StageAnnotation* PublishStageWordAnnotation(
      const OpGraph& graph, int stage_index, StageAnnotation* annotation) const;

  // Reference implementations that ignore every cache and recompute from
  // the raw per-op settings. The cached variants above must agree with
  // these bit-for-bit (property-tested); they exist to make that guarantee
  // checkable and to document the hash layout in one obvious place.
  uint64_t SemanticHashUncached(const OpGraph& graph) const;
  uint64_t StageSemanticHashUncached(const OpGraph& graph,
                                     const ClusterSpec& cluster,
                                     int stage_index) const;

  // Multi-line human-readable dump.
  std::string ToString(const OpGraph& graph) const;

  // Compact one-line summary: "mbs=2 | s0[ops 0-25 g4 tp2 dp2 rc12] | ...".
  std::string ShortString() const;

 private:
  // Folds one stage's header (num_ops, num_devices) and op words — the
  // per-stage step of the whole-config hash.
  uint64_t FoldStage(const OpGraph& graph, uint64_t state,
                     int stage_index) const;

  // Drops cached whole-config hash state from stage `stage_index` on
  // (mutation entry point). Negative index drops everything.
  void InvalidateSemanticPrefix(int stage_index);

  int microbatch_size_ = 1;
  std::vector<std::shared_ptr<StageBlock>> stages_;

  // Incremental whole-config hash state: sem_prefix_[k] is the fold state
  // after the header (microbatch size, stage count) and stages [0, k);
  // sem_valid_ counts the leading entries that are current. The prefix is
  // a fixed inline array so config copies never allocate for it — configs
  // with more than kMaxCachedStages stages (the search caps at 12) skip
  // prefix caching and refold from the header (still using cached words).
  // Guarded by sem_mu_ against concurrent const hashing; mutators adjust
  // sem_valid_ without contention concerns (mutation is exclusive by
  // contract, but they still take the lock — mutation is far off the hash
  // hot path).
  static constexpr size_t kMaxCachedStages = 15;
  mutable std::mutex sem_mu_;
  mutable const OpGraph* sem_graph_ = nullptr;
  mutable std::array<uint64_t, kMaxCachedStages + 1> sem_prefix_{};
  mutable size_t sem_valid_ = 0;
};

// ----- Initial configuration generators (§5.1, Exp#7) -----

// Balanced default: `num_stages` stages with FLOP-balanced contiguous op
// ranges, power-of-two device counts as equal as possible, pure data
// parallelism inside each stage (tp clamped per op), minimum microbatch
// size, full recomputation off. Returns an error when `num_stages` exceeds
// the device or op count or the device count cannot be split.
StatusOr<ParallelConfig> MakeEvenConfig(const OpGraph& graph,
                                        const ClusterSpec& cluster,
                                        int num_stages, int microbatch_size);

// Exp#7's adversarial starts: op-imbalanced (stage op counts skewed) and
// GPU-imbalanced (device counts skewed).
StatusOr<ParallelConfig> MakeOpImbalancedConfig(const OpGraph& graph,
                                                const ClusterSpec& cluster,
                                                int num_stages,
                                                int microbatch_size);
StatusOr<ParallelConfig> MakeGpuImbalancedConfig(const OpGraph& graph,
                                                 const ClusterSpec& cluster,
                                                 int num_stages,
                                                 int microbatch_size);

// Splits `total` devices into `parts` power-of-two chunks, as equal as
// possible (e.g. 32 into 3 -> {16, 8, 8}). `total` must be a power of two
// and parts <= total.
StatusOr<std::vector<int>> SplitDevicesPow2(int total, int parts);

// True if v is a power of two (v >= 1).
bool IsPow2(int v);

// Clamps a requested stage-level tp for one op: partitioned ops cannot shard
// weights beyond max_tp; followers and replicated ops can always "over-shard"
// (the excess is replication, handled by the cost model).
int ClampOpTp(const Operator& op, int tp);

}  // namespace aceso

#endif  // SRC_CONFIG_PARALLEL_CONFIG_H_
