#include "src/serve/plan_cache.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace aceso {
namespace serve {
namespace {

// Normalized magnitude delta in [0, 1]: 0 for equal, ->1 as the values
// diverge. Both arguments non-negative.
double DeltaScore(double a, double b) {
  if (a == b) {
    return 0.0;
  }
  const double m = std::max(a, b);
  return m > 0.0 ? std::abs(a - b) / m : 0.0;
}

// Memory budgets compare specially: 0 means "device capacity", which is
// only a zero-delta match against another capacity request — against an
// explicit budget the plans were judged under different verdicts, so the
// pair takes the full penalty.
double BudgetDelta(int64_t a, int64_t b) {
  const bool cap_a = a <= 0;
  const bool cap_b = b <= 0;
  if (cap_a && cap_b) {
    return 0.0;
  }
  if (cap_a != cap_b) {
    return 1.0;
  }
  return DeltaScore(static_cast<double>(a), static_cast<double>(b));
}

}  // namespace

std::optional<CachedPlan> PlanCache::Get(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->plan;
}

void PlanCache::UnhookNeighborLocked(const Entry& entry) {
  if (!entry.neighbor.has_value()) {
    return;
  }
  auto fit = families_.find(entry.family);
  if (fit == families_.end()) {
    return;
  }
  auto& keys = fit->second;
  keys.erase(std::remove(keys.begin(), keys.end(), entry.key), keys.end());
  if (keys.empty()) {
    families_.erase(fit);
  }
}

void PlanCache::Put(uint64_t key, CachedPlan plan) {
  if (options_.capacity == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    it->second->derived.clear();
    UnhookNeighborLocked(*it->second);
    it->second->neighbor.reset();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan), {}, 0, std::nullopt});
  index_[key] = lru_.begin();
  ++inserts_;
  while (lru_.size() > options_.capacity) {
    UnhookNeighborLocked(lru_.back());
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const std::string> PlanCache::GetDerived(uint64_t key,
                                                         uint64_t variant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  for (const auto& [v, payload] : it->second->derived) {
    if (v == variant) {
      ++derived_hits_;
      return payload;
    }
  }
  ++derived_misses_;
  return nullptr;
}

void PlanCache::PutDerived(uint64_t key, uint64_t variant,
                           std::shared_ptr<const std::string> payload) {
  if (options_.capacity == 0 || payload == nullptr ||
      options_.max_derived_payloads == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return;  // entry evicted between render and publish — nothing to attach
  }
  auto& derived = it->second->derived;
  for (auto& [v, existing] : derived) {
    if (v == variant) {
      existing = std::move(payload);
      return;
    }
  }
  while (derived.size() >= options_.max_derived_payloads) {
    derived.erase(derived.begin());
    ++derived_evictions_;
  }
  derived.emplace_back(variant, std::move(payload));
  ++derived_inserts_;
}

void PlanCache::AttachNeighbor(uint64_t key, uint64_t family,
                               NeighborPlan plan) {
  if (options_.capacity == 0 || plan.config == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return;  // entry evicted between search and registration
  }
  UnhookNeighborLocked(*it->second);  // re-registration replaces cleanly
  it->second->family = family;
  it->second->neighbor = std::move(plan);
  families_[family].push_back(key);
}

std::optional<NeighborPlan> PlanCache::FindNeighbor(
    uint64_t family, uint64_t exclude_key, int num_ops, int num_gpus,
    int64_t memory_budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++neighbor_probes_;
  auto fit = families_.find(family);
  if (fit == families_.end()) {
    return std::nullopt;
  }
  const NeighborPlan* best = nullptr;
  double best_score = 0.0;
  for (const uint64_t key : fit->second) {
    if (key == exclude_key) {
      continue;
    }
    auto it = index_.find(key);
    if (it == index_.end() || !it->second->neighbor.has_value()) {
      continue;  // stale registration; unhooked lazily on next eviction
    }
    const NeighborPlan& plan = *it->second->neighbor;
    const double score =
        DeltaScore(plan.num_ops, num_ops) + DeltaScore(plan.num_gpus, num_gpus) +
        BudgetDelta(plan.memory_budget_bytes, memory_budget_bytes);
    if (best == nullptr || score < best_score) {
      best = &plan;
      best_score = score;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  ++neighbor_hits_;
  return *best;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.evictions = evictions_;
  s.derived_hits = derived_hits_;
  s.derived_misses = derived_misses_;
  s.derived_inserts = derived_inserts_;
  s.derived_evictions = derived_evictions_;
  s.neighbor_probes = neighbor_probes_;
  s.neighbor_hits = neighbor_hits_;
  return s;
}

}  // namespace serve
}  // namespace aceso
