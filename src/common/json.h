// Minimal JSON utilities shared by every hand-emitted JSON writer in the
// repository (Chrome traces, telemetry JSONL, BENCH_search.json): string
// escaping, number formatting, and a strict validating parser used by tests
// and tools to keep those writers honest.
//
// This is deliberately not a JSON library — the repo carries no JSON
// dependency and its writers emit documents directly. What must be shared is
// the part that is easy to get wrong everywhere: escaping arbitrary strings
// (task names, model names, file paths) so the output stays parseable.

#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <string>
#include <string_view>

#include "src/common/status.h"

namespace aceso {

// Appends `s` to `out` with JSON string escaping applied (quotes,
// backslashes, and control characters; no surrounding quotes added).
void AppendJsonEscaped(std::string& out, std::string_view s);

// Returns `s` escaped for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

// Appends a JSON number for `value`. Non-finite values (which JSON cannot
// represent) are emitted as null; finite values round-trip through a
// shortest-ish %.15g rendering that the validator below accepts.
void AppendJsonNumber(std::string& out, double value);

// Strict validation of a complete JSON document (RFC 8259 grammar: one
// value, optionally surrounded by whitespace, nothing trailing). Returns
// OkStatus() iff `text` parses; the error message carries the byte offset
// and what was expected. Used by tests to gate every writer in the repo and
// cheap enough (single pass, no allocation besides the error) for tools to
// self-check their output.
Status JsonValidate(std::string_view text);

}  // namespace aceso

#endif  // SRC_COMMON_JSON_H_
