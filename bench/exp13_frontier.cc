// Frontier study (DESIGN.md §15): one Pareto-tracking search pass vs N
// independent fixed-budget searches at equal total evaluation budget.
//
// The claim: because Algorithm 1 evaluates hundreds of configurations on the
// way to one answer, archiving the Pareto set over (iteration time, peak
// memory) during a single capacity-limit search answers *every* memory
// budget at least as well as splitting the same evaluation budget across
// per-budget searches — and the frontier additionally prices each point
// ($/step), so a budget sweep is a lookup, not a re-search.
//
//   exp13_frontier [--quick] [--out BENCH_frontier.json]
//
// --out writes a google-benchmark-format report (consumed by
// tools/check_bench_regression.py against bench/baselines/
// exp13_frontier_baseline.json): wall time of the frontier pass, wall time
// of the independent searches, and the per-budget quality ratio x1000
// (frontier best / independent best, worst budget; deterministic, so a
// drift here is a search change, not noise).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

double WallSeconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aceso;
  using namespace aceso::bench;

  bool quick = QuickMode();
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  PrintHeader("Frontier: one Pareto pass vs per-budget searches",
              "a single frontier-tracking search answers every memory "
              "budget no worse than independent per-budget searches given "
              "the same total evaluation budget");

  const char* model_name = quick ? "gpt3-0.35b" : "gpt3-1.3b";
  const int gpus = 8;
  // Per-stage-count deterministic evaluation budget: the frontier pass gets
  // E, each of the N independent searches gets E/N — equal total budget.
  const int64_t total_evals = quick ? 400 : 1600;
  const size_t num_budgets = 4;

  auto graph = models::BuildByName(model_name);
  ACESO_CHECK(graph.ok());
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(gpus);
  ProfileDatabase db(cluster);
  PerformanceModel model(&*graph, cluster, &db);

  auto base_options = [&]() {
    SearchOptions options;
    options.time_budget_seconds = 1e9;  // evaluation-budget limited
    options.max_evaluations = total_evals;
    options.seed = 20240422;
    return options;
  };

  // One frontier-tracking pass at device capacity.
  SearchOptions frontier_options = base_options();
  frontier_options.track_frontier = true;
  const auto frontier_start = std::chrono::steady_clock::now();
  const SearchResult frontier_result = AcesoSearch(model, frontier_options);
  const double frontier_seconds = WallSeconds(frontier_start);
  const FrontierArchive& frontier = frontier_result.frontier;
  std::printf("frontier pass: %zu points archived (%lld offered) in %.2fs\n",
              frontier.size(),
              static_cast<long long>(frontier_result.stats.frontier_offered),
              frontier_seconds);
  if (frontier.empty()) {
    std::fprintf(stderr, "frontier pass archived no points\n");
    return 1;
  }

  // Sweep budgets at capacity fractions — the question a user actually
  // asks ("what if I only had half / a quarter of the memory?"). Budgets
  // are inputs to both systems, chosen before either answer exists.
  std::vector<int64_t> budgets;
  for (size_t i = 0; i < num_budgets; ++i) {
    budgets.push_back(cluster.gpu.memory_bytes >>
                      (num_budgets - 1 - i));
  }

  // N independent searches, each budget-constrained, each at E/N.
  const auto independent_start = std::chrono::steady_clock::now();
  std::vector<SearchResult> independent;
  for (const int64_t budget : budgets) {
    SearchOptions options = base_options();
    options.max_evaluations =
        total_evals / static_cast<int64_t>(budgets.size());
    options.memory_budget_bytes = budget;
    independent.push_back(AcesoSearch(model, options));
  }
  const double independent_seconds = WallSeconds(independent_start);
  std::printf("independent passes: %zu searches x %lld evals in %.2fs\n",
              budgets.size(),
              static_cast<long long>(total_evals /
                                     static_cast<int64_t>(budgets.size())),
              independent_seconds);

  TablePrinter table({"budget", "frontier iter(s)", "independent iter(s)",
                      "ratio", "verdict"});
  double worst_ratio = 0.0;
  for (size_t i = 0; i < budgets.size(); ++i) {
    const FrontierPoint* best = frontier.BestUnderBudget(budgets[i]);
    const SearchResult& indep = independent[i];
    const bool indep_found = indep.found && !indep.best.perf.oom;
    const double frontier_time =
        best != nullptr ? best->iteration_time : 0.0;
    const double indep_time =
        indep_found ? indep.best.perf.iteration_time : 0.0;
    double ratio = 1.0;
    const char* verdict = "tie";
    if (best == nullptr && indep_found) {
      ratio = 2.0;  // frontier has no answer at all: count as a clear loss
      verdict = "LOSS";
    } else if (best != nullptr && indep_found) {
      ratio = frontier_time / indep_time;
      verdict = ratio < 1.0 - 1e-9   ? "win"
                : ratio <= 1.0 + 1e-9 ? "tie"
                : ratio <= 1.05       ? "close"
                                      : "LOSS";
    } else if (best != nullptr) {
      ratio = 0.5;  // only the frontier answered this budget
      verdict = "win";
    }
    worst_ratio = std::max(worst_ratio, ratio);
    table.AddRow({FormatBytes(budgets[i]),
                  best != nullptr ? FormatDouble(frontier_time, 3) : "none",
                  indep_found ? FormatDouble(indep_time, 3) : "infeasible",
                  FormatDouble(ratio, 3), verdict});
  }
  table.Print(std::cout);

  // Acceptance: the frontier's per-budget best matches or beats the
  // dedicated searches (small tolerance for float noise).
  const bool pass = worst_ratio <= 1.05;
  std::printf("worst frontier/independent ratio: %.3f -> %s\n", worst_ratio,
              pass ? "PASS" : "FAIL");

  if (!out_path.empty()) {
    std::string json = "{\"context\":{\"executable\":\"exp13_frontier\"},";
    json += "\"benchmarks\":[";
    json += "{\"name\":\"exp13/frontier_search\",\"run_type\":\"iteration\",";
    json += "\"real_time\":" + std::to_string(frontier_seconds * 1e9) +
            ",\"time_unit\":\"ns\"},";
    json +=
        "{\"name\":\"exp13/independent_searches\",\"run_type\":\"iteration\",";
    json += "\"real_time\":" + std::to_string(independent_seconds * 1e9) +
            ",\"time_unit\":\"ns\"},";
    // Deterministic quality signal: worst per-budget ratio x1000 (a value
    // drifting past 2x the pinned baseline means the frontier stopped
    // matching dedicated searches — a search regression, not timer noise).
    json +=
        "{\"name\":\"exp13/quality_ratio_x1000\",\"run_type\":\"iteration\",";
    json += "\"real_time\":" + std::to_string(worst_ratio * 1000.0) +
            ",\"time_unit\":\"ns\"}]}";
    std::ofstream out(out_path, std::ios::binary);
    out << json << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}
