#include "src/common/text_record.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace aceso {
namespace {

TEST(TextRecordTest, SetGetRoundTrip) {
  TextRecord rec;
  rec.Set("name", "fc1");
  rec.SetInt("tp", 4);
  rec.SetDouble("time", 1.25);
  EXPECT_TRUE(rec.Has("name"));
  EXPECT_EQ(*rec.Get("name"), "fc1");
  EXPECT_EQ(*rec.GetInt("tp"), 4);
  EXPECT_DOUBLE_EQ(*rec.GetDouble("time"), 1.25);
}

TEST(TextRecordTest, MissingFieldIsNotFound) {
  TextRecord rec;
  EXPECT_FALSE(rec.Has("x"));
  EXPECT_EQ(rec.Get("x").status().code(), StatusCode::kNotFound);
}

TEST(TextRecordTest, NonNumericFieldFailsTypedGet) {
  TextRecord rec;
  rec.Set("v", "hello");
  EXPECT_EQ(rec.GetInt("v").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rec.GetDouble("v").status().code(), StatusCode::kInvalidArgument);
}

TEST(TextRecordTest, DoubleSurvivesSerializationExactly) {
  TextRecord rec;
  rec.SetDouble("v", 0.1234567890123456789);
  auto records = ParseRecords(SerializeRecords({rec}));
  ASSERT_TRUE(records.ok());
  EXPECT_DOUBLE_EQ(*(*records)[0].GetDouble("v"), 0.1234567890123456789);
}

TEST(SerializeTest, MultipleRecordsRoundTrip) {
  TextRecord a;
  a.Set("k", "1");
  TextRecord b;
  b.Set("k", "2");
  b.Set("extra", "yes");
  auto parsed = ParseRecords(SerializeRecords({a, b}));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(*(*parsed)[0].Get("k"), "1");
  EXPECT_EQ(*(*parsed)[1].Get("extra"), "yes");
}

TEST(ParseTest, IgnoresCommentsAndBlankLines) {
  auto parsed = ParseRecords("# comment\n\nrecord {\n  a = 1\n}\n\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
}

TEST(ParseTest, ValueMayContainSpaces) {
  auto parsed = ParseRecords("record {\n  name = hello world\n}\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*(*parsed)[0].Get("name"), "hello world");
}

TEST(ParseTest, RejectsNestedRecord) {
  auto parsed = ParseRecords("record {\nrecord {\n}\n}\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(ParseTest, RejectsStrayClose) {
  EXPECT_FALSE(ParseRecords("}\n").ok());
}

TEST(ParseTest, RejectsLineWithoutEquals) {
  EXPECT_FALSE(ParseRecords("record {\n  garbage\n}\n").ok());
}

TEST(ParseTest, RejectsUnterminatedRecord) {
  EXPECT_FALSE(ParseRecords("record {\n  a = 1\n").ok());
}

TEST(FileTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/records_test.txt";
  TextRecord rec;
  rec.Set("x", "y");
  ASSERT_TRUE(WriteRecordsToFile(path, {rec}).ok());
  auto read = ReadRecordsFromFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ(*(*read)[0].Get("x"), "y");
  std::remove(path.c_str());
}

TEST(FileTest, MissingFileIsNotFound) {
  auto read = ReadRecordsFromFile("/nonexistent/path/file.txt");
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace aceso
