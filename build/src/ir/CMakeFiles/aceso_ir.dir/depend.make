# Empty dependencies file for aceso_ir.
# This may be replaced when dependencies are built.
