
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/execution_plan.cc" "src/plan/CMakeFiles/aceso_plan.dir/execution_plan.cc.o" "gcc" "src/plan/CMakeFiles/aceso_plan.dir/execution_plan.cc.o.d"
  "/root/repo/src/plan/schedule.cc" "src/plan/CMakeFiles/aceso_plan.dir/schedule.cc.o" "gcc" "src/plan/CMakeFiles/aceso_plan.dir/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/aceso_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aceso_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aceso_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aceso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
