// Quickstart: search a parallel training configuration for GPT-3 1.3B on a
// 4-GPU node, print the discovered plan and its predicted performance.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/aceso.h"

int main() {
  using namespace aceso;

  // 1. Pick a model from the zoo and the hardware to train it on.
  const OpGraph model = models::Gpt3(1.3);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  std::printf("model:   %s\n", model.Summary().c_str());
  std::printf("cluster: %s\n\n", cluster.ToString().c_str());

  // 2. Build the profiling database and the performance model. The database
  //    memoizes per-operator and per-collective measurements and can be
  //    saved/loaded to skip profiling in later runs.
  ProfileDatabase db(cluster);
  PerformanceModel perf_model(&model, cluster, &db);

  // 3. Run the Aceso search: iterative bottleneck alleviation under a time
  //    budget.
  SearchOptions options;
  options.time_budget_seconds = 2.0;
  options.max_hops = 7;
  SearchResult result = AcesoSearch(perf_model, options);
  if (!result.found) {
    std::printf("no feasible configuration found\n");
    return 1;
  }

  // 4. Inspect the winner.
  const ScoredConfig& best = result.best;
  std::printf("search finished in %.2fs: %lld configs explored, %lld "
              "improvements\n\n",
              result.search_seconds,
              static_cast<long long>(result.stats.configs_explored),
              static_cast<long long>(result.stats.improvements));
  std::printf("%s\n", best.config.ToString(model).c_str());
  std::printf("predicted: %s\n", best.perf.Summary().c_str());
  std::printf("predicted throughput: %.1f samples/s\n",
              best.perf.Throughput(model.global_batch_size()));
  return 0;
}
