#include "src/common/units.h"

#include <cmath>
#include <cstdio>

namespace aceso {
namespace {

std::string FormatWithSuffix(double value, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffix);
  return buf;
}

}  // namespace

std::string FormatBytes(int64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB) return FormatWithSuffix(b / static_cast<double>(kGiB), "GB");
  if (bytes >= kMiB) return FormatWithSuffix(b / static_cast<double>(kMiB), "MB");
  if (bytes >= kKiB) return FormatWithSuffix(b / static_cast<double>(kKiB), "KB");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  return buf;
}

std::string FormatFlops(double flops) {
  if (flops >= kTera) return FormatWithSuffix(flops / kTera, "TFLOP");
  if (flops >= kGiga) return FormatWithSuffix(flops / kGiga, "GFLOP");
  if (flops >= kMega) return FormatWithSuffix(flops / kMega, "MFLOP");
  return FormatWithSuffix(flops, "FLOP");
}

std::string FormatSeconds(double seconds) {
  if (seconds >= 1.0) return FormatWithSuffix(seconds, "s");
  if (seconds >= 1e-3) return FormatWithSuffix(seconds * 1e3, "ms");
  return FormatWithSuffix(seconds * 1e6, "us");
}

int64_t RoundUpAllocSize(int64_t bytes) {
  if (bytes <= 0) {
    return 512;
  }
  if (bytes < kMiB) {
    return (bytes + 511) / 512 * 512;
  }
  return (bytes + 2 * kMiB - 1) / (2 * kMiB) * (2 * kMiB);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace aceso
