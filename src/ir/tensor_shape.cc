#include "src/ir/tensor_shape.h"

#include <sstream>

namespace aceso {

int64_t TensorShape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    n *= d;
  }
  return n;
}

std::string TensorShape::ToString() const {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << dims_[i];
  }
  oss << "]";
  return oss.str();
}

}  // namespace aceso
