// Micro-benchmark: the discrete-event runtime — event engine throughput,
// allocator operations, and full pipeline executions.

#include <benchmark/benchmark.h>

#include "src/aceso.h"

namespace aceso {
namespace {

void BM_EventSimPipelineGrid(benchmark::State& state) {
  const int stages = 4;
  const int microbatches = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventSimulator sim;
    std::vector<ResourceId> gpus;
    for (int s = 0; s < stages; ++s) {
      gpus.push_back(sim.AddResource("gpu"));
    }
    std::vector<TaskId> prev_stage(static_cast<size_t>(microbatches), -1);
    for (int s = 0; s < stages; ++s) {
      for (int m = 0; m < microbatches; ++m) {
        const TaskId t =
            sim.AddTask("f", 1.0, gpus[static_cast<size_t>(s)]);
        if (prev_stage[static_cast<size_t>(m)] >= 0) {
          sim.AddDependency(prev_stage[static_cast<size_t>(m)], t);
        }
        prev_stage[static_cast<size_t>(m)] = t;
      }
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * stages * microbatches);
}
BENCHMARK(BM_EventSimPipelineGrid)->Arg(64)->Arg(512)->Arg(1024);

void BM_AllocatorChurn(benchmark::State& state) {
  for (auto _ : state) {
    CachingAllocatorSim alloc(int64_t{32} * kGiB);
    std::vector<int64_t> handles;
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 16; ++i) {
        handles.push_back(alloc.Alloc((i + 1) * 3 * kMiB));
      }
      for (int64_t h : handles) {
        alloc.Free(h);
      }
      handles.clear();
    }
    benchmark::DoNotOptimize(alloc.peak_reserved());
  }
  state.SetItemsProcessed(state.iterations() * 100 * 16 * 2);
}
BENCHMARK(BM_AllocatorChurn);

void BM_ExecutePipeline(benchmark::State& state) {
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  PipelineExecutor executor(&model);
  auto config = MakeEvenConfig(graph, cluster, static_cast<int>(state.range(0)),
                               2);
  model.Evaluate(*config);  // warm the database
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(*config));
  }
}
BENCHMARK(BM_ExecutePipeline)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_ExecutePipelineTimeOnly(benchmark::State& state) {
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  PipelineExecutor executor(&model);
  auto config = MakeEvenConfig(graph, cluster, 4, 2);
  model.Evaluate(*config);
  ExecutionOptions options;
  options.simulate_memory = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(*config, options));
  }
}
BENCHMARK(BM_ExecutePipelineTimeOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aceso

BENCHMARK_MAIN();
