file(REMOVE_RECURSE
  "libaceso_profile.a"
)
