#include "src/cost/op_memo.h"

#include <algorithm>

#include "src/cost/perf_model.h"

namespace aceso {
namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

struct OpBreakdownMemo::Entry {
  uint64_t key = 0;
  OpBreakdown value;
};

OpBreakdownMemo::OpBreakdownMemo(const OpMemoOptions& options)
    : enabled_(options.enabled) {
  const size_t capacity = RoundUpPow2(std::max<size_t>(options.capacity, 64));
  mask_ = capacity - 1;
  slots_ = std::vector<std::atomic<const Entry*>>(capacity);
  for (auto& slot : slots_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }
}

OpBreakdownMemo::~OpBreakdownMemo() { Clear(); }

void OpBreakdownMemo::Clear() {
  for (auto& slot : slots_) {
    delete slot.exchange(nullptr, std::memory_order_acq_rel);
  }
  entries_.store(0, std::memory_order_relaxed);
}

const OpBreakdown* OpBreakdownMemo::Lookup(uint64_t key) const {
  if (!enabled_) {
    return nullptr;
  }
  size_t index = static_cast<size_t>(key) & mask_;
  for (size_t probe = 0; probe < kMaxProbe; ++probe) {
    const Entry* entry = slots_[index].load(std::memory_order_acquire);
    if (entry == nullptr) {
      // Inserts fill slots from the home position without ever clearing
      // them, so an empty slot ends every probe sequence for this key.
      break;
    }
    if (entry->key == key) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &entry->value;
    }
    index = (index + 1) & mask_;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

const OpBreakdown* OpBreakdownMemo::Insert(uint64_t key,
                                           const OpBreakdown& value) {
  if (!enabled_) {
    return nullptr;
  }
  // 7/8 occupancy cap: past it, probe runs lengthen sharply and the memo
  // has clearly been sized below the working set — dropping inserts keeps
  // lookups fast and memory bounded.
  if (entries_.load(std::memory_order_relaxed) >=
      static_cast<int64_t>((mask_ + 1) - ((mask_ + 1) >> 3))) {
    inserts_dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Entry* fresh = nullptr;
  size_t index = static_cast<size_t>(key) & mask_;
  for (size_t probe = 0; probe < kMaxProbe; ++probe) {
    const Entry* entry = slots_[index].load(std::memory_order_acquire);
    if (entry == nullptr) {
      if (fresh == nullptr) {
        fresh = new Entry;
        fresh->key = key;
        fresh->value = value;
      }
      const Entry* expected = nullptr;
      if (slots_[index].compare_exchange_strong(expected, fresh,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        entries_.fetch_add(1, std::memory_order_relaxed);
        return &fresh->value;
      }
      entry = expected;  // lost the race; fall through to examine the winner
    }
    if (entry->key == key) {
      // First-writer-wins: someone published this key (necessarily with the
      // same bits — the value is a pure function of the key's inputs).
      delete fresh;
      return &entry->value;
    }
    index = (index + 1) & mask_;
  }
  delete fresh;
  inserts_dropped_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

OpMemoStats OpBreakdownMemo::stats() const {
  OpMemoStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts_dropped = inserts_dropped_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace aceso
