// Cross-model property sweep over the baseline searchers: on every model
// family and cluster size, each baseline must produce a valid, feasible,
// executable configuration, and Aceso must never lose to it under the
// performance model given a modest budget.

#include <gtest/gtest.h>

#include "src/aceso.h"

namespace aceso {
namespace {

class BaselineSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  BaselineSweep() {
    auto graph = models::BuildByName(std::get<0>(GetParam()));
    EXPECT_TRUE(graph.ok());
    graph_ = *std::move(graph);
    cluster_ = ClusterSpec::WithGpuCount(std::get<1>(GetParam()));
    db_ = std::make_unique<ProfileDatabase>(cluster_);
    model_ = std::make_unique<PerformanceModel>(&graph_, cluster_, db_.get());
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  std::unique_ptr<ProfileDatabase> db_;
  std::unique_ptr<PerformanceModel> model_;
};

TEST_P(BaselineSweep, MegatronGridFindsValidFeasiblePlan) {
  const BaselineResult result = MegatronGridSearch(*model_);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(result.best.config.Validate(graph_, cluster_).ok());
  EXPECT_FALSE(result.best.perf.oom);
  // Global uniformity: one (tp, dp) pair and one recompute policy per plan.
  std::set<std::tuple<int, int, bool>> combos;
  for (const StageConfig& stage : result.best.config.stages()) {
    for (size_t i = 0; i < stage.ops.size(); ++i) {
      const Operator& op = graph_.op(stage.first_op + static_cast<int>(i));
      if (op.tp_class == TpClass::kPartitioned) {
        combos.insert({stage.ops[i].tp, stage.ops[i].dp,
                       stage.ops[i].recompute});
      }
    }
  }
  EXPECT_LE(combos.size(), 2u);  // clamping of small ops may add one combo
}

TEST_P(BaselineSweep, AlpaLikeFindsValidFeasiblePlan) {
  AlpaOptions options;
  options.layer_group_counts = {8};
  options.max_microbatch = 16;
  const auto result = AlpaLikeSearch(*model_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->found);
  EXPECT_TRUE(result->best.config.Validate(graph_, cluster_).ok());
  EXPECT_FALSE(result->best.perf.oom);
}

TEST_P(BaselineSweep, AcesoNotWorseThanMegatronGrid) {
  const BaselineResult megatron = MegatronGridSearch(*model_);
  SearchOptions options;
  options.time_budget_seconds = 1.0;
  const SearchResult aceso = AcesoSearch(*model_, options);
  ASSERT_TRUE(megatron.found);
  ASSERT_TRUE(aceso.found);
  // Megatron's space is a strict subset of Aceso's; with a modest budget
  // Aceso must come within a whisker (search is anytime, so allow 3%).
  EXPECT_LE(aceso.best.perf.iteration_time,
            megatron.best.perf.iteration_time * 1.03);
}

TEST_P(BaselineSweep, BaselinePlansExecuteInRuntime) {
  const BaselineResult megatron = MegatronGridSearch(*model_);
  ASSERT_TRUE(megatron.found);
  PipelineExecutor executor(model_.get());
  const ExecutionResult run = executor.Execute(megatron.best.config);
  EXPECT_FALSE(run.oom);
  EXPECT_GT(run.Throughput(graph_.global_batch_size()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Models, BaselineSweep,
    ::testing::Combine(::testing::Values("gpt3-0.35b", "t5-0.77b",
                                         "wresnet-0.5b", "bert-0.34b"),
                       ::testing::Values(4, 8)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::to_string(std::get<1>(info.param)) + "gpu";
      for (char& c : name) {
        if (c == '-' || c == '.') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace aceso
