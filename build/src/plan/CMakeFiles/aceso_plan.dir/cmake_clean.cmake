file(REMOVE_RECURSE
  "CMakeFiles/aceso_plan.dir/execution_plan.cc.o"
  "CMakeFiles/aceso_plan.dir/execution_plan.cc.o.d"
  "CMakeFiles/aceso_plan.dir/schedule.cc.o"
  "CMakeFiles/aceso_plan.dir/schedule.cc.o.d"
  "libaceso_plan.a"
  "libaceso_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
