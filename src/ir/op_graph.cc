#include "src/ir/op_graph.h"

#include <sstream>

#include "src/common/hash.h"
#include "src/common/units.h"

namespace aceso {

double OpGraph::TotalFwdFlops() const {
  double total = 0.0;
  for (const Operator& op : ops_) {
    total += op.fwd_flops;
  }
  return total;
}

int64_t OpGraph::TotalParamBytes() const {
  int64_t total = 0;
  for (const Operator& op : ops_) {
    total += op.param_bytes;
  }
  return total;
}

int64_t OpGraph::TotalParamCount() const {
  return TotalParamBytes() / BytesPerElement(precision_);
}

int64_t OpGraph::TotalActivationBytes() const {
  int64_t total = 0;
  for (const Operator& op : ops_) {
    total += op.out_bytes;
  }
  return total;
}

uint64_t OpGraph::SemanticFingerprint() const {
  Hasher h;
  h.Add(static_cast<int>(precision_));
  h.Add(global_batch_size_);
  h.Add(num_ops());
  for (const Operator& op : ops_) {
    Hasher per_op;
    per_op.Add(op.Signature());
    per_op.Add(static_cast<int>(op.default_tp_dim));
    h.Add(Mix64(per_op.Digest()));
  }
  return h.Digest();
}

std::string OpGraph::Summary() const {
  std::ostringstream oss;
  oss << name_ << ": " << num_ops() << " ops, "
      << FormatDouble(static_cast<double>(TotalParamCount()) / 1e9, 2)
      << "B params, " << FormatFlops(TotalFwdFlops()) << "/sample fwd, "
      << PrecisionName(precision_) << ", batch " << global_batch_size_;
  return oss.str();
}

}  // namespace aceso
