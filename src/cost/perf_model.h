// The profiling-based performance model (§3.3).
//
// Given a parallel configuration, predicts per-stage computation /
// communication time and peak memory, plus end-to-end iteration time under
// 1F1B pipeline scheduling:
//
//   Memory_i = M_param_i + M_act_i * (p - i) + M_opt_i + M_reserved_i   (Eq.1)
//   T_stage_i = T_warmup_i + T_steady_i + T_cooldown_i                  (Eq.2)
//
// with T_warmup_i the forward time of one microbatch through the upstream
// stages, T_steady_i = N * (f_i + b_i), and T_cooldown_i the corresponding
// upstream backward drain. Iteration time is the max over stages. The model
// intentionally over-estimates the framework allocator's reserved memory
// (the maximum per-op working set in the stage) to avoid declaring OOM
// configurations feasible.
//
// Evaluation is O(#ops) per configuration with all operator and collective
// times memoized in the shared ProfileDatabase; the search calls Evaluate()
// tens of thousands of times per run.

#ifndef SRC_COST_PERF_MODEL_H_
#define SRC_COST_PERF_MODEL_H_

#include <atomic>
#include <cstdint>

#include "src/config/parallel_config.h"
#include "src/cost/op_memo.h"
#include "src/cost/resource_usage.h"
#include "src/cost/stage_cache.h"
#include "src/hw/interconnect.h"
#include "src/ir/op_graph.h"
#include "src/profile/profile_db.h"

namespace aceso {

// Grad + optimizer state bytes per parameter byte: fp16 mixed precision
// keeps fp16 grads plus fp32 master weights and Adam moments
// ((2+4+4+4)/2 = 7); fp32 keeps fp32 grads and moments ((4+4+4)/4 = 3).
double OptimizerMultiplier(Precision precision);

// Compute-shard degree of an op under a tp assignment: partitioned ops shard
// exactly tp ways; followers shard up to their structural limit (excess tp is
// replication); replicated ops never shard.
int EffectiveShards(const Operator& op, int tp);

// Per-op cost decomposition produced by the stage walk; consumed by both the
// closed-form estimate (Evaluate) and the discrete-event executor
// (src/runtime), which re-times the same work with per-run jitter.
struct OpBreakdown {
  double fwd_kernel = 0.0;  // forward kernel time
  double bwd_kernel = 0.0;  // backward kernel time (without recompute replay)
  double fwd_comm = 0.0;    // tp collectives + resharding, forward
  double bwd_comm = 0.0;    // tp collectives + resharding, backward
  double dp_sync = 0.0;     // once-per-iteration gradient all-reduce share
  int64_t stored_bytes = 0; // activation bytes stored per microbatch
  int64_t param_bytes = 0;  // parameter bytes per device
  // Gradient + optimizer-state bytes per device; ZeRO-sharded ops divide
  // the optimizer portion across their dp group.
  int64_t optimizer_bytes = 0;
  // The model's working-set estimate: transient workspace plus the op's
  // output tensor. Used for the deliberate reserve overestimate (§3.3).
  int64_t workspace_bytes = 0;
  // Pure transient workspace (attention scores, im2col buffers) — what the
  // runtime actually allocates and frees around the kernel.
  int64_t transient_bytes = 0;
  bool recompute = false;
};

// Aggregated walk of one stage.
struct StageWalk {
  std::vector<OpBreakdown> ops;
  // Stage input boundary activation stored per microbatch (always kept).
  int64_t boundary_bytes = 0;
  // P2P time per microbatch for receiving the stage input (fwd) and the
  // output gradient (bwd); zero for the first/last stage respectively.
  double p2p_fwd = 0.0;
  double p2p_bwd = 0.0;
};

// The per-stage reduction of a StageWalk: everything Evaluate() needs that
// depends only on the stage itself (keyed by StageSemanticHash). The
// remaining StageUsage fields — warmup/steady/cooldown times and the
// 1F1B in-flight memory total — depend on cross-stage context and are
// derived from these components per evaluation. This is the value type of
// the stage-cost cache: a hit substitutes O(1) arithmetic for the O(#ops)
// walk and re-aggregation.
struct StageCost {
  double fwd_time = 0.0;
  double bwd_time = 0.0;
  double comp_time = 0.0;
  double comm_time = 0.0;
  double recompute_time = 0.0;
  double dp_sync_time = 0.0;
  int64_t param_bytes = 0;
  int64_t optimizer_bytes = 0;
  int64_t activation_bytes_per_mb = 0;  // allocator-rounded, incl. boundary
  int64_t reserved_bytes = 0;
};

// Reduces a walk to its stage-local cost components. Cached and uncached
// evaluations both funnel through this exact function so their arithmetic
// (and therefore every PerfResult bit) is identical.
StageCost AggregateStageCost(const StageWalk& walk);

class PerformanceModel {
 public:
  // `graph` and `db` must outlive the model. Thread-safe: Evaluate() may be
  // called concurrently (the database memoization and the stage-cost cache
  // are internally locked).
  PerformanceModel(const OpGraph* graph, const ClusterSpec& cluster,
                   ProfileDatabase* db, StageCacheOptions cache_options = {},
                   OpMemoOptions memo_options = {});

  // Predicts the performance of `config`, which must already be
  // structurally valid for the graph/cluster. With the stage-cost cache
  // enabled (default), per-stage walks are memoized by StageSemanticHash;
  // the search mutates one or two stages per primitive, so re-evaluations
  // walk only the changed stages. Cached and uncached evaluations produce
  // bit-identical PerfResults (the cache key covers every walk input).
  PerfResult Evaluate(const ParallelConfig& config) const;

  // The per-op cost walk of one stage (shared with the runtime simulator).
  // Always the direct path: every op is derived from scratch against the
  // profile database. The runtime simulator needs the per-op breakdowns;
  // Evaluate() goes through ComputeStageCost() instead.
  StageWalk WalkStage(const ParallelConfig& config, int stage_index) const;

  // The stage-local cost of one stage — what Evaluate() computes on a
  // stage-cache miss (or with the cache disabled). With the op memo and/or
  // run compression enabled (both default on) this is the fast path of
  // DESIGN.md §12: per-op contexts are keyed by (op signature, packed
  // semantic word, walk-carried layout state, placement context) and served
  // from the lock-free memo, and maximal runs of repeating (key-)cycles —
  // the N identical transformer blocks of a deep stage — replay one
  // materialized period instead of re-deriving every repetition. The result
  // is bit-identical to AggregateStageCost(WalkStage(config, stage_index))
  // in every field: integer fields aggregate associatively, double fields
  // replay the exact accumulation sequence with bit-equal per-op values
  // (property-tested in fuzz_property_test).
  StageCost ComputeStageCost(const ParallelConfig& config,
                             int stage_index) const;

  // Number of Evaluate() calls so far — the "explored configurations"
  // metric of Exp#4.
  int64_t NumEvaluations() const {
    return eval_count_.load(std::memory_order_relaxed);
  }
  void ResetEvaluationCount() {
    eval_count_.store(0, std::memory_order_relaxed);
  }

  const OpGraph& graph() const { return *graph_; }
  const ClusterSpec& cluster() const { return cluster_; }
  ProfileDatabase& db() const { return *db_; }

  // The shared stage-cost cache (hit/miss/eviction counters live here).
  const StageCostCache& stage_cache() const { return stage_cache_; }
  StageCostCache& mutable_stage_cache() { return stage_cache_; }
  // Setup-time toggle; not synchronized against concurrent Evaluate().
  void set_stage_cache_enabled(bool enabled) {
    stage_cache_.set_enabled(enabled);
    if (!enabled) {
      stage_cache_.Clear();
    }
  }

  // The op-breakdown memo (hit/miss counters live here).
  const OpBreakdownMemo& op_memo() const { return op_memo_; }
  // Setup-time toggle; not synchronized against concurrent Evaluate().
  void set_op_memo_enabled(bool enabled) { op_memo_.set_enabled(enabled); }

  // Run compression (repeated-layer replay inside ComputeStageCost).
  // Setup-time toggle; not synchronized against concurrent Evaluate().
  bool run_compression_enabled() const { return run_compression_; }
  void set_run_compression_enabled(bool enabled) {
    run_compression_ = enabled;
  }

 private:
  // The batched group evaluator (batch_eval.h) replays Evaluate()'s per-stage
  // resolution against stage_cache_ directly and charges eval_count_ one
  // evaluation per lane, so scalar and batched runs report identical
  // exploration counts.
  friend class CandidateBatch;

  const OpGraph* graph_;
  ClusterSpec cluster_;
  InterconnectModel interconnect_;
  ProfileDatabase* db_;
  // op(i).Signature() for every graph op, computed once at construction:
  // memo-key derivation runs per op per uncached stage walk and must not
  // re-hash operator fields each time.
  std::vector<uint64_t> op_signatures_;
  bool run_compression_ = true;
  mutable std::atomic<int64_t> eval_count_{0};
  mutable StageCostCache stage_cache_;
  mutable OpBreakdownMemo op_memo_;
};

}  // namespace aceso

#endif  // SRC_COST_PERF_MODEL_H_
