// aceso_serve: the long-lived planning daemon (DESIGN.md §14).
//
//   aceso_serve [--host 127.0.0.1] [--port 8700] [--workers N]
//               [--eval-threads N] [--cache-capacity N] [--max-inflight N]
//               [--http-workers N] [--idle-timeout SECONDS]
//               [--snapshot-dir DIR] [--save-on-exit] [--no-neighbor-seed]
//
// Accepts plan requests over HTTP (POST /plan), serves duplicates from the
// plan cache, and — with --snapshot-dir — warm-starts profile databases
// from saved snapshots so the first request on a profiled cluster runs
// zero measurements. --save-on-exit persists every materialized profile
// database back to the snapshot directory on clean shutdown (SIGINT/
// SIGTERM), so the next daemon run starts warm.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/aceso.h"
#include "tools/cli_flags.h"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 8700;
  int workers = 0;  // 0 = auto (see ServeOptions)
  int eval_threads = 2;
  int cache_capacity = 64;
  int max_inflight = 4;
  int http_workers = 2;        // epoll event-loop workers
  double idle_timeout = 30.0;  // keep-alive idle eviction (seconds)
  std::string snapshot_dir;
  bool save_on_exit = false;
  // Escape hatch for neighbor-seeded incremental planning (DESIGN.md §17):
  // off restores strictly request-deterministic answers.
  bool neighbor_seed = true;
};

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host ADDR] [--port N] [--workers N] "
               "[--eval-threads N] [--cache-capacity N]\n"
               "          [--max-inflight N] [--http-workers N] "
               "[--idle-timeout SECONDS]\n"
               "          [--snapshot-dir DIR] [--save-on-exit] "
               "[--no-neighbor-seed]\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Args& args) {
  using aceso::cli::ParseInt;
  using aceso::cli::ParsePositiveInt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      args.host = v;
    } else if (flag == "--port") {
      // 0 is allowed: bind an ephemeral port and print it.
      if (!ParseInt("--port", next(), &args.port) || args.port < 0) {
        return false;
      }
    } else if (flag == "--workers") {
      if (!ParsePositiveInt("--workers", next(), &args.workers)) return false;
    } else if (flag == "--eval-threads") {
      if (!ParsePositiveInt("--eval-threads", next(), &args.eval_threads)) {
        return false;
      }
    } else if (flag == "--cache-capacity") {
      if (!ParseInt("--cache-capacity", next(), &args.cache_capacity) ||
          args.cache_capacity < 0) {
        return false;
      }
    } else if (flag == "--max-inflight") {
      if (!ParsePositiveInt("--max-inflight", next(), &args.max_inflight)) {
        return false;
      }
    } else if (flag == "--http-workers") {
      if (!ParsePositiveInt("--http-workers", next(), &args.http_workers)) {
        return false;
      }
    } else if (flag == "--idle-timeout") {
      if (!aceso::cli::ParsePositiveDouble("--idle-timeout", next(),
                                           &args.idle_timeout)) {
        return false;
      }
    } else if (flag == "--snapshot-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      args.snapshot_dir = v;
    } else if (flag == "--save-on-exit") {
      args.save_on_exit = true;
    } else if (flag == "--no-neighbor-seed") {
      args.neighbor_seed = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args.save_on_exit && args.snapshot_dir.empty()) {
    std::fprintf(stderr, "--save-on-exit requires --snapshot-dir\n");
    return false;
  }
  return true;
}

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace aceso;
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    PrintUsage(argv[0]);
    return 2;
  }

  serve::ServeOptions options;
  options.worker_threads = args.workers;
  options.eval_threads = args.eval_threads;
  options.plan_cache_capacity = static_cast<size_t>(args.cache_capacity);
  options.max_inflight_searches = args.max_inflight;
  options.http_workers = args.http_workers;
  options.http_idle_timeout_seconds = args.idle_timeout;
  options.snapshot_dir = args.snapshot_dir;
  options.neighbor_seed = args.neighbor_seed;

  serve::PlanDaemon daemon(options);
  const Status started = daemon.Start(args.host, args.port);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("aceso_serve listening on %s:%d (cache=%d, max-inflight=%d%s)\n",
              args.host.c_str(), daemon.port(), args.cache_capacity,
              args.max_inflight,
              args.snapshot_dir.empty()
                  ? ""
                  : (", snapshots=" + args.snapshot_dir).c_str());
  std::fflush(stdout);  // readiness marker for scripts tailing our output

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("shutting down\n");
  daemon.Stop();
  if (args.save_on_exit) {
    const Status saved = daemon.service().SaveProfiles();
    if (!saved.ok()) {
      std::fprintf(stderr, "profile save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("profiles saved to %s\n", args.snapshot_dir.c_str());
  }
  std::printf("final stats: %s\n", daemon.StatsJson().c_str());
  return 0;
}
