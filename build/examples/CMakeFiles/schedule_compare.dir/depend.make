# Empty dependencies file for schedule_compare.
# This may be replaced when dependencies are built.
