file(REMOVE_RECURSE
  "CMakeFiles/micro_search.dir/bench/micro_search.cc.o"
  "CMakeFiles/micro_search.dir/bench/micro_search.cc.o.d"
  "bench/micro_search"
  "bench/micro_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
