file(REMOVE_RECURSE
  "CMakeFiles/aceso_config.dir/config_io.cc.o"
  "CMakeFiles/aceso_config.dir/config_io.cc.o.d"
  "CMakeFiles/aceso_config.dir/parallel_config.cc.o"
  "CMakeFiles/aceso_config.dir/parallel_config.cc.o.d"
  "libaceso_config.a"
  "libaceso_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
