#include "src/core/apply.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "src/common/logging.h"

namespace aceso {
namespace {

// Uniform tp the stage was configured with: per-op clamping only lowers tp,
// so the stage-level setting is the max across ops.
int StageModalTp(const StageConfig& stage) {
  int tp = 1;
  for (const OpParallel& setting : stage.ops) {
    tp = std::max(tp, setting.tp);
  }
  return tp;
}

// Approximate stored activation bytes of one op per microbatch per device;
// ranking key for the greedy recompute chooser (§4.1: "operators with the
// largest activation size").
int64_t ApproxStoredBytes(const Operator& op, const OpParallel& setting,
                          int mbs) {
  int shards = 1;
  if (op.tp_class == TpClass::kPartitioned &&
      setting.tp_dim == TpDim::kColumn) {
    shards = setting.tp;
  } else if (op.tp_class == TpClass::kShardFollower) {
    shards = EffectiveShards(op, setting.tp);
  }
  return op.out_bytes * static_cast<int64_t>(mbs / setting.dp) / shards;
}

// Re-derives one op's settings for a destination stage with uniform target
// tp, preserving the recompute flag.
OpParallel RederiveSettings(const Operator& op, const OpParallel& old_setting,
                            int stage_devices, int target_tp) {
  OpParallel setting;
  setting.tp = ClampOpTp(op, std::min(target_tp, stage_devices));
  setting.dp = stage_devices / setting.tp;
  setting.tp_dim =
      op.default_tp_dim == TpDim::kNone ? TpDim::kColumn : op.default_tp_dim;
  setting.recompute = old_setting.recompute;
  return setting;
}

// Re-derives every op in `stage` for a new device count / uniform tp target,
// preserving recompute flags.
void RederiveStage(const OpGraph& graph, StageConfig& stage, int target_tp) {
  for (int i = 0; i < stage.num_ops; ++i) {
    const Operator& op = graph.op(stage.first_op + i);
    OpParallel& setting = stage.ops[static_cast<size_t>(i)];
    setting = RederiveSettings(op, setting, stage.num_devices, target_tp);
  }
}

}  // namespace

double EstimateOpTime(const PerformanceModel& model, const Operator& op,
                      const OpParallel& setting, int microbatch_size) {
  const int local_batch = std::max(1, microbatch_size / setting.dp);
  const OpMeasurement m =
      model.db().OpTime(op, model.graph().precision(),
                        EffectiveShards(op, setting.tp), local_batch);
  double t = m.fwd_seconds + m.bwd_seconds;
  if (setting.recompute) {
    t += m.fwd_seconds;
  }
  return t;
}

void FixRecompute(const PerformanceModel& model, ParallelConfig& config,
                  int stage_index) {
  if (stage_index < 0 || stage_index >= config.num_stages()) {
    return;
  }
  const PerfResult perf = model.Evaluate(config);
  const int64_t limit = model.cluster().gpu.memory_bytes;
  const StageUsage& usage = perf.stages[static_cast<size_t>(stage_index)];
  StageConfig& stage = config.MutableStage(stage_index);
  const int64_t in_flight =
      std::max(1, config.num_stages() - stage_index);
  const int mbs = config.microbatch_size();

  if (usage.memory_bytes > limit) {
    // Enable recompute on the fattest activations until the stage fits.
    int64_t need = usage.memory_bytes - limit;
    std::vector<std::pair<int64_t, int>> by_size;  // (stored bytes, op index)
    for (int i = 0; i < stage.num_ops; ++i) {
      const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
      if (!setting.recompute) {
        const Operator& op = model.graph().op(stage.first_op + i);
        const int64_t stored = ApproxStoredBytes(op, setting, mbs);
        if (stored > 0) {
          by_size.emplace_back(stored, i);
        }
      }
    }
    std::sort(by_size.begin(), by_size.end(),
              std::greater<std::pair<int64_t, int>>());
    for (const auto& [stored, i] : by_size) {
      if (need <= 0) {
        break;
      }
      stage.ops[static_cast<size_t>(i)].recompute = true;
      need -= stored * in_flight;
    }
  } else {
    // Release recompute where memory allows, cheapest savings first --
    // i.e. drop the recomputations with the highest time cost per byte.
    int64_t slack = limit - usage.memory_bytes;
    std::vector<std::pair<double, int>> by_cost;  // (recompute time, op index)
    for (int i = 0; i < stage.num_ops; ++i) {
      const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
      if (setting.recompute) {
        const Operator& op = model.graph().op(stage.first_op + i);
        const OpMeasurement m = model.db().OpTime(
            op, model.graph().precision(), EffectiveShards(op, setting.tp),
            std::max(1, mbs / setting.dp));
        by_cost.emplace_back(m.fwd_seconds, i);
      }
    }
    std::sort(by_cost.begin(), by_cost.end(),
              std::greater<std::pair<double, int>>());
    for (const auto& [cost, i] : by_cost) {
      const Operator& op = model.graph().op(stage.first_op + i);
      const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
      const int64_t added = ApproxStoredBytes(op, setting, mbs) * in_flight;
      if (added <= slack) {
        stage.ops[static_cast<size_t>(i)].recompute = false;
        slack -= added;
      }
    }
  }
}

bool MoveOps(const PerformanceModel& model, ParallelConfig& config, int from,
             int to, int count) {
  if (std::abs(from - to) != 1 || count < 1) {
    return false;
  }
  if (from < 0 || to < 0 || from >= config.num_stages() ||
      to >= config.num_stages()) {
    return false;
  }
  StageConfig& src = config.MutableStage(from);
  StageConfig& dst = config.MutableStage(to);
  if (count >= src.num_ops) {
    return false;  // never empty a stage
  }
  const OpGraph& graph = model.graph();
  const int dst_tp = StageModalTp(dst);

  if (to == from - 1) {
    // Move the first `count` ops of src to the back of dst.
    for (int i = 0; i < count; ++i) {
      const int op_index = src.first_op + i;
      dst.ops.push_back(RederiveSettings(graph.op(op_index),
                                         src.ops[static_cast<size_t>(i)],
                                         dst.num_devices, dst_tp));
    }
    src.ops.erase(src.ops.begin(), src.ops.begin() + count);
    src.first_op += count;
    src.num_ops -= count;
    dst.num_ops += count;
  } else {
    // Move the last `count` ops of src to the front of dst.
    std::vector<OpParallel> moved;
    moved.reserve(static_cast<size_t>(count));
    for (int i = src.num_ops - count; i < src.num_ops; ++i) {
      const int op_index = src.first_op + i;
      moved.push_back(RederiveSettings(graph.op(op_index),
                                       src.ops[static_cast<size_t>(i)],
                                       dst.num_devices, dst_tp));
    }
    src.ops.erase(src.ops.end() - count, src.ops.end());
    src.num_ops -= count;
    dst.ops.insert(dst.ops.begin(), moved.begin(), moved.end());
    dst.first_op -= count;
    dst.num_ops += count;
  }
  return true;
}

namespace {

// Chooses candidate op-move counts for rebalancing `from` toward `to_time`:
// the tight goal moves just enough per-microbatch time to close half the
// gap; the loose goal closes the full gap; 1 is the minimal probe (§4.1).
std::vector<int> ChooseMoveCounts(const PerformanceModel& model,
                                  const ParallelConfig& config,
                                  const PerfResult& perf, int from,
                                  bool from_front, double target_delta) {
  const StageConfig& stage = config.stage(from);
  const int n = stage.num_ops;
  std::vector<double> op_times(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    op_times[static_cast<size_t>(i)] =
        EstimateOpTime(model, model.graph().op(stage.first_op + i),
                       stage.ops[static_cast<size_t>(i)],
                       config.microbatch_size());
  }
  auto cumulative = [&](int k) {
    double sum = 0.0;
    for (int i = 0; i < k; ++i) {
      const int idx = from_front ? i : n - 1 - i;
      sum += op_times[static_cast<size_t>(idx)];
    }
    return sum;
  };
  std::vector<int> counts{1};
  for (const double goal : {target_delta / 2.0, target_delta}) {
    if (goal <= 0.0) {
      continue;
    }
    for (int k = 1; k < n; ++k) {
      if (cumulative(k) >= goal) {
        counts.push_back(k);
        break;
      }
    }
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  // Keep counts strictly below the stage size.
  while (!counts.empty() && counts.back() >= n) {
    counts.pop_back();
  }
  (void)perf;
  return counts;
}

// The idlest stage: lowest total stage time.
int IdlestStage(const PerfResult& perf, int exclude) {
  int best = -1;
  double best_time = 0.0;
  for (int s = 0; s < static_cast<int>(perf.stages.size()); ++s) {
    if (s == exclude) {
      continue;
    }
    const double t = perf.stages[static_cast<size_t>(s)].stage_time;
    if (best < 0 || t < best_time) {
      best = s;
      best_time = t;
    }
  }
  return best;
}

// The stage with the most free memory, for memory-driven partner choice.
int RoomiestStage(const PerfResult& perf, int exclude) {
  int best = -1;
  int64_t best_mem = 0;
  for (int s = 0; s < static_cast<int>(perf.stages.size()); ++s) {
    if (s == exclude) {
      continue;
    }
    const int64_t m = perf.stages[static_cast<size_t>(s)].memory_bytes;
    if (best < 0 || m < best_mem) {
      best = s;
      best_mem = m;
    }
  }
  return best;
}

class CandidateBuilder {
 public:
  CandidateBuilder(const PerformanceModel& model, const ParallelConfig& base,
                   PrimitiveKind kind, int stage, bool attach_recompute_fix)
      : model_(model),
        base_(base),
        kind_(kind),
        stage_(stage),
        attach_recompute_fix_(attach_recompute_fix) {}

  // Validates, applies the §4.3 recompute attachment to the stages the
  // candidate touched, and records it.
  void Emit(ParallelConfig config, const std::string& description,
            std::vector<int> touched_stages) {
    if (!config.Validate(model_.graph(), model_.cluster()).ok()) {
      return;
    }
    if (attach_recompute_fix_) {
      for (int s : touched_stages) {
        FixRecompute(model_, config, s);
      }
    }
    Candidate candidate;
    candidate.config = std::move(config);
    candidate.primitive = kind_;
    candidate.stage = stage_;
    candidate.description = description;
    out_.push_back(std::move(candidate));
  }

  std::vector<Candidate> Take() { return std::move(out_); }

 private:
  const PerformanceModel& model_;
  const ParallelConfig& base_;
  PrimitiveKind kind_;
  int stage_;
  bool attach_recompute_fix_;
  std::vector<Candidate> out_;
};

std::string Desc(PrimitiveKind kind, int stage, const std::string& extra) {
  std::ostringstream oss;
  oss << PrimitiveName(kind) << "(s" << stage << ")";
  if (!extra.empty()) {
    oss << " " << extra;
  }
  return oss.str();
}

// Generates device-migration candidates: `gain` stage absorbs d devices from
// `lose` stage, with the gain going into tp or dp (`gain_into_tp`) and the
// donor shrinking its tp or dp.
void EmitDeviceMigrations(CandidateBuilder& builder,
                          const PerformanceModel& model,
                          const ParallelConfig& config, int gain, int lose,
                          bool gain_into_tp, PrimitiveKind kind) {
  if (lose < 0 || lose == gain) {
    return;
  }
  const int g_gain = config.stage(gain).num_devices;
  const int g_lose = config.stage(lose).num_devices;
  for (int d = 1; d < g_lose; d *= 2) {
    if (!IsPow2(g_gain + d) || !IsPow2(g_lose - d)) {
      continue;
    }
    const int gain_ratio = (g_gain + d) / g_gain;
    if (gain_ratio * g_gain != g_gain + d) {
      continue;  // only clean multiplicative growth re-derives uniformly
    }
    const int lose_ratio = g_lose / (g_lose - d);
    for (const bool lose_from_tp : {true, false}) {
      ParallelConfig next = config;
      StageConfig& gain_stage = next.MutableStage(gain);
      StageConfig& lose_stage = next.MutableStage(lose);
      const int gain_tp = StageModalTp(gain_stage);
      const int lose_tp = StageModalTp(lose_stage);
      if (lose_from_tp && lose_tp < lose_ratio) {
        continue;  // donor cannot shrink tp below 1
      }
      gain_stage.num_devices = g_gain + d;
      lose_stage.num_devices = g_lose - d;
      RederiveStage(model.graph(), gain_stage,
                    gain_into_tp ? gain_tp * gain_ratio : gain_tp);
      RederiveStage(model.graph(), lose_stage,
                    lose_from_tp ? lose_tp / lose_ratio : lose_tp);
      std::ostringstream extra;
      extra << "+" << d << "gpu from s" << lose << " partner "
            << (lose_from_tp ? "dec-tp" : "dec-dp");
      builder.Emit(std::move(next), Desc(kind, gain, extra.str()),
                   {gain, lose});
    }
  }
}

}  // namespace

std::vector<Candidate> GeneratePrimitiveCandidates(
    const PerformanceModel& model, const ParallelConfig& config,
    const PerfResult& perf, PrimitiveKind kind, int stage,
    bool attach_recompute_fix) {
  CandidateBuilder builder(model, config, kind, stage, attach_recompute_fix);
  const int p = config.num_stages();
  const StageConfig& target = config.stage(stage);
  const int mbs = config.microbatch_size();
  const OpGraph& graph = model.graph();

  switch (kind) {
    case PrimitiveKind::kDecOpCount: {
      // Push ops toward the idlest stage, relaying across intermediates
      // (§4.3). Also try both adjacent neighbours directly.
      const int idlest = IdlestStage(perf, stage);
      if (idlest < 0) {
        break;
      }
      const bool toward_earlier = idlest < stage;
      const double gap =
          (perf.stages[static_cast<size_t>(stage)].fwd_time +
           perf.stages[static_cast<size_t>(stage)].bwd_time) -
          (perf.stages[static_cast<size_t>(idlest)].fwd_time +
           perf.stages[static_cast<size_t>(idlest)].bwd_time);
      for (int count : ChooseMoveCounts(model, config, perf, stage,
                                        toward_earlier, gap)) {
        // Relay: shift `count` ops one hop at a time until they reach the
        // idlest stage.
        ParallelConfig next = config;
        bool ok = true;
        std::vector<int> touched;
        const int step = toward_earlier ? -1 : 1;
        for (int s = stage; s != idlest && ok; s += step) {
          ok = MoveOps(model, next, s, s + step, count);
          touched.push_back(s);
          touched.push_back(s + step);
        }
        if (ok) {
          std::ostringstream extra;
          extra << count << "ops -> s" << idlest;
          builder.Emit(std::move(next), Desc(kind, stage, extra.str()),
                       touched);
        }
      }
      // Direct single-hop moves to each neighbour.
      for (int neighbor : {stage - 1, stage + 1}) {
        if (neighbor < 0 || neighbor >= p || neighbor == idlest) {
          continue;
        }
        ParallelConfig next = config;
        if (MoveOps(model, next, stage, neighbor, 1)) {
          std::ostringstream extra;
          extra << "1op -> s" << neighbor;
          builder.Emit(std::move(next), Desc(kind, stage, extra.str()),
                       {stage, neighbor});
        }
      }
      break;
    }

    case PrimitiveKind::kIncOpCount: {
      // Pull ops from the busiest adjacent neighbour.
      for (int neighbor : {stage - 1, stage + 1}) {
        if (neighbor < 0 || neighbor >= p) {
          continue;
        }
        const bool from_front = neighbor > stage;  // take dst-adjacent end
        const double gap =
            (perf.stages[static_cast<size_t>(neighbor)].fwd_time +
             perf.stages[static_cast<size_t>(neighbor)].bwd_time) -
            (perf.stages[static_cast<size_t>(stage)].fwd_time +
             perf.stages[static_cast<size_t>(stage)].bwd_time);
        for (int count : ChooseMoveCounts(model, config, perf, neighbor,
                                          from_front, gap)) {
          ParallelConfig next = config;
          if (MoveOps(model, next, neighbor, stage, count)) {
            std::ostringstream extra;
            extra << count << "ops <- s" << neighbor;
            builder.Emit(std::move(next), Desc(kind, stage, extra.str()),
                         {stage, neighbor});
          }
        }
      }
      break;
    }

    case PrimitiveKind::kIncMbs: {
      const int64_t batch = graph.global_batch_size();
      const int next_mbs = mbs * 2;
      if (next_mbs <= batch && batch % next_mbs == 0) {
        ParallelConfig next = config;
        next.set_microbatch_size(next_mbs);
        std::vector<int> touched(static_cast<size_t>(p));
        std::iota(touched.begin(), touched.end(), 0);
        builder.Emit(std::move(next),
                     Desc(kind, stage, "mbs=" + std::to_string(next_mbs)),
                     touched);
      }
      break;
    }

    case PrimitiveKind::kDecMbs: {
      if (mbs >= 2 && mbs % 2 == 0) {
        ParallelConfig next = config;
        next.set_microbatch_size(mbs / 2);
        std::vector<int> touched(static_cast<size_t>(p));
        std::iota(touched.begin(), touched.end(), 0);
        builder.Emit(std::move(next),
                     Desc(kind, stage, "mbs=" + std::to_string(mbs / 2)),
                     touched);
      }
      break;
    }

    case PrimitiveKind::kIncTp:
    case PrimitiveKind::kIncDp: {
      const bool into_tp = kind == PrimitiveKind::kIncTp;
      // (a) In-place conversion: grow tp at dp's expense or vice versa.
      {
        ParallelConfig next = config;
        StageConfig& s = next.MutableStage(stage);
        const int tp = StageModalTp(s);
        const int new_tp = into_tp ? tp * 2 : tp / 2;
        if (new_tp >= 1 && new_tp <= s.num_devices) {
          RederiveStage(graph, s, new_tp);
          builder.Emit(std::move(next),
                       Desc(kind, stage,
                            into_tp ? "swap dp->tp" : "swap tp->dp"),
                       {stage});
        }
      }
      // (b) Device migration from partner stages. §3.2.1 prefers the
      // partner with the most available resources; we emit the idlest and
      // roomiest donors first and let the estimator rank the rest.
      const int idle_donor = IdlestStage(perf, stage);
      const int roomy_donor = RoomiestStage(perf, stage);
      EmitDeviceMigrations(builder, model, config, stage, idle_donor, into_tp,
                           kind);
      if (roomy_donor != idle_donor) {
        EmitDeviceMigrations(builder, model, config, stage, roomy_donor,
                             into_tp, kind);
      }
      for (int donor = 0; donor < p; ++donor) {
        if (donor != stage && donor != idle_donor && donor != roomy_donor) {
          EmitDeviceMigrations(builder, model, config, stage, donor, into_tp,
                               kind);
        }
      }
      break;
    }

    case PrimitiveKind::kDecTp:
    case PrimitiveKind::kDecDp: {
      const bool from_tp = kind == PrimitiveKind::kDecTp;
      // (a) In-place conversion.
      {
        ParallelConfig next = config;
        StageConfig& s = next.MutableStage(stage);
        const int tp = StageModalTp(s);
        const int new_tp = from_tp ? tp / 2 : tp * 2;
        if (new_tp >= 1 && new_tp <= s.num_devices) {
          RederiveStage(graph, s, new_tp);
          builder.Emit(std::move(next),
                       Desc(kind, stage,
                            from_tp ? "swap tp->dp" : "swap dp->tp"),
                       {stage});
        }
      }
      // (b) Donate devices to a partner stage (partner inc-dp/inc-tp),
      // slowest receivers first.
      if (target.num_devices >= 2) {
        std::vector<int> receivers;
        for (int s = 0; s < p; ++s) {
          if (s != stage) {
            receivers.push_back(s);
          }
        }
        std::sort(receivers.begin(), receivers.end(), [&](int a, int b) {
          return perf.stages[static_cast<size_t>(a)].stage_time >
                 perf.stages[static_cast<size_t>(b)].stage_time;
        });
        for (const int receiver : receivers) {
          EmitDeviceMigrations(builder, model, config, receiver, stage,
                               /*gain_into_tp=*/true, kind);
          EmitDeviceMigrations(builder, model, config, receiver, stage,
                               /*gain_into_tp=*/false, kind);
        }
      }
      break;
    }

    case PrimitiveKind::kIncRc: {
      // (a) Recompute enough to fit in memory (greedy, largest activation
      // first): FixRecompute's OOM path. Only meaningful when the stage is
      // actually over budget — otherwise the fix would *release*
      // recomputation, which is dec-rc's job.
      if (perf.stages[static_cast<size_t>(stage)].memory_bytes >
          model.cluster().gpu.memory_bytes) {
        ParallelConfig next = config;
        FixRecompute(model, next, stage);
        builder.Emit(std::move(next), Desc(kind, stage, "fit"), {});
      }
      // (b) Recompute one more op: the largest non-recomputed activation.
      {
        ParallelConfig next = config;
        StageConfig& s = next.MutableStage(stage);
        int best = -1;
        int64_t best_bytes = 0;
        for (int i = 0; i < s.num_ops; ++i) {
          if (s.ops[static_cast<size_t>(i)].recompute) {
            continue;
          }
          const int64_t bytes = ApproxStoredBytes(
              graph.op(s.first_op + i), s.ops[static_cast<size_t>(i)], mbs);
          if (bytes > best_bytes) {
            best_bytes = bytes;
            best = i;
          }
        }
        if (best >= 0) {
          s.ops[static_cast<size_t>(best)].recompute = true;
          builder.Emit(std::move(next), Desc(kind, stage, "+1op"), {});
        }
      }
      break;
    }

    case PrimitiveKind::kIncZero:
    case PrimitiveKind::kDecZero: {
      // Toggle ZeRO optimizer sharding for every data-parallel op of the
      // stage (the extension is stage-granular, like recomputation).
      const bool enable = kind == PrimitiveKind::kIncZero;
      ParallelConfig next = config;
      StageConfig& s = next.MutableStage(stage);
      bool changed = false;
      for (OpParallel& setting : s.ops) {
        if (setting.dp > 1 && setting.zero_opt != enable) {
          setting.zero_opt = enable;
          changed = true;
        }
      }
      if (changed) {
        builder.Emit(std::move(next),
                     Desc(kind, stage, enable ? "shard opt" : "replicate opt"),
                     {});
      }
      break;
    }

    case PrimitiveKind::kDecRc: {
      // (a) Drop as much recomputation as memory allows (only when the
      // stage has memory slack; under OOM the fix would add rc instead).
      if (perf.stages[static_cast<size_t>(stage)].memory_bytes <=
          model.cluster().gpu.memory_bytes) {
        ParallelConfig next = config;
        FixRecompute(model, next, stage);
        builder.Emit(std::move(next), Desc(kind, stage, "relax"), {});
      }
      // (b) Drop the single most expensive recompute.
      {
        ParallelConfig next = config;
        StageConfig& s = next.MutableStage(stage);
        int best = -1;
        double best_time = 0.0;
        for (int i = 0; i < s.num_ops; ++i) {
          if (!s.ops[static_cast<size_t>(i)].recompute) {
            continue;
          }
          const double t =
              EstimateOpTime(model, graph.op(s.first_op + i),
                             s.ops[static_cast<size_t>(i)], mbs);
          if (t > best_time) {
            best_time = t;
            best = i;
          }
        }
        if (best >= 0) {
          s.ops[static_cast<size_t>(best)].recompute = false;
          builder.Emit(std::move(next), Desc(kind, stage, "-1op"), {});
        }
      }
      break;
    }
  }

  return builder.Take();
}

}  // namespace aceso
