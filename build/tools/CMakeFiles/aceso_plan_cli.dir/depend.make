# Empty dependencies file for aceso_plan_cli.
# This may be replaced when dependencies are built.
