#include "src/runtime/event_sim.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(EventSimTest, SingleTask) {
  EventSimulator sim;
  const TaskId t = sim.AddTask("t", 2.5);
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(*makespan, 2.5);
  EXPECT_DOUBLE_EQ(sim.StartTime(t), 0.0);
  EXPECT_DOUBLE_EQ(sim.FinishTime(t), 2.5);
}

TEST(EventSimTest, ChainOfDependencies) {
  EventSimulator sim;
  const TaskId a = sim.AddTask("a", 1.0);
  const TaskId b = sim.AddTask("b", 2.0);
  const TaskId c = sim.AddTask("c", 3.0);
  sim.AddDependency(a, b);
  sim.AddDependency(b, c);
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(*makespan, 6.0);
  EXPECT_DOUBLE_EQ(sim.StartTime(c), 3.0);
}

TEST(EventSimTest, IndependentTasksRunConcurrently) {
  EventSimulator sim;
  sim.AddTask("a", 5.0);
  sim.AddTask("b", 3.0);
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(*makespan, 5.0);
}

TEST(EventSimTest, ResourceSerializesTasks) {
  EventSimulator sim;
  const ResourceId gpu = sim.AddResource("gpu");
  sim.AddTask("a", 2.0, gpu);
  sim.AddTask("b", 3.0, gpu);
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(*makespan, 5.0);
  EXPECT_DOUBLE_EQ(sim.ResourceBusySeconds(gpu), 5.0);
}

TEST(EventSimTest, ResourceFifoFollowsInsertionOrder) {
  EventSimulator sim;
  const ResourceId gpu = sim.AddResource("gpu");
  const TaskId first = sim.AddTask("first", 1.0, gpu);
  const TaskId second = sim.AddTask("second", 1.0, gpu);
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_LT(sim.StartTime(first), sim.StartTime(second));
}

TEST(EventSimTest, DiamondDependency) {
  EventSimulator sim;
  const TaskId src = sim.AddTask("src", 1.0);
  const TaskId left = sim.AddTask("left", 2.0);
  const TaskId right = sim.AddTask("right", 4.0);
  const TaskId sink = sim.AddTask("sink", 1.0);
  sim.AddDependency(src, left);
  sim.AddDependency(src, right);
  sim.AddDependency(left, sink);
  sim.AddDependency(right, sink);
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(*makespan, 6.0);  // 1 + max(2,4) + 1
}

TEST(EventSimTest, DependencyPlusResourceContention) {
  EventSimulator sim;
  const ResourceId link = sim.AddResource("link");
  // Two transfers on the same link, each gated by a different producer.
  const TaskId p1 = sim.AddTask("p1", 1.0);
  const TaskId p2 = sim.AddTask("p2", 1.5);
  const TaskId x1 = sim.AddTask("x1", 2.0, link);
  const TaskId x2 = sim.AddTask("x2", 2.0, link);
  sim.AddDependency(p1, x1);
  sim.AddDependency(p2, x2);
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  // x1 runs [1,3); x2 ready at 1.5 but the link is busy until 3 -> [3,5).
  EXPECT_DOUBLE_EQ(sim.StartTime(x2), 3.0);
  EXPECT_DOUBLE_EQ(*makespan, 5.0);
}

TEST(EventSimTest, CycleDetected) {
  EventSimulator sim;
  const TaskId a = sim.AddTask("a", 1.0);
  const TaskId b = sim.AddTask("b", 1.0);
  sim.AddDependency(a, b);
  sim.AddDependency(b, a);
  auto makespan = sim.Run();
  ASSERT_FALSE(makespan.ok());
  EXPECT_EQ(makespan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EventSimTest, ZeroDurationTasks) {
  EventSimulator sim;
  const TaskId a = sim.AddTask("a", 0.0);
  const TaskId b = sim.AddTask("b", 1.0);
  sim.AddDependency(a, b);
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(*makespan, 1.0);
}

TEST(EventSimTest, EmptyGraph) {
  EventSimulator sim;
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(*makespan, 0.0);
}

TEST(EventSimTest, LargePipelineScales) {
  // A 4-stage, 256-microbatch 1F1B-like grid runs quickly and produces a
  // sane makespan.
  EventSimulator sim;
  constexpr int kStages = 4;
  constexpr int kMicrobatches = 256;
  std::vector<ResourceId> gpus;
  for (int s = 0; s < kStages; ++s) {
    gpus.push_back(sim.AddResource("gpu"));
  }
  std::vector<std::vector<TaskId>> fwd(kStages);
  for (int s = 0; s < kStages; ++s) {
    for (int m = 0; m < kMicrobatches; ++m) {
      const TaskId t = sim.AddTask("f", 1.0, gpus[static_cast<size_t>(s)]);
      fwd[static_cast<size_t>(s)].push_back(t);
      if (s > 0) {
        sim.AddDependency(fwd[static_cast<size_t>(s) - 1][static_cast<size_t>(m)], t);
      }
    }
  }
  auto makespan = sim.Run();
  ASSERT_TRUE(makespan.ok());
  // Ideal pipeline: (stages - 1) + microbatches units.
  EXPECT_DOUBLE_EQ(*makespan, kStages - 1 + kMicrobatches);
}

}  // namespace
}  // namespace aceso
