// aceso_bench_serve: planning-daemon serving benchmark for CI.
//
//   aceso_bench_serve [--out BENCH_serve.json] [--quick]
//                     [--model gpt3-0.35b] [--gpus 4] [--max-evals 60]
//
// Measures end-to-end request latency (real loopback HTTP, sequential
// requests) through the daemon's three serving paths:
//
//   - cold:       a fresh daemon, empty profile database — the first
//                 request pays profiling plus the search;
//   - warm_profile: a daemon warm-started from a saved profile snapshot
//                 (ProfileDatabase::Load), same requests — the search runs
//                 but every profile lookup hits, zero measurements;
//   - cache_hit:  a repeated identical request — served straight from the
//                 PlanCache, no search at all.
//
// Requests use a deterministic evaluation budget (max_evaluations), so the
// cold and warm phases run bit-identical searches over identical profile
// keys; the report asserts the warm phase's profile-miss delta is zero and
// the cache-hit phase's hit counter matches its request count. The JSON is
// hand-emitted (the repository carries no JSON dependency); CI uploads it
// as the BENCH_serve artifact next to BENCH_search and BENCH_perf_model.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/aceso.h"
#include "tools/cli_flags.h"

namespace aceso {
namespace {

struct Args {
  std::string out = "BENCH_serve.json";
  std::string model = "gpt3-0.35b";
  int gpus = 4;
  int64_t max_evals = 60;
  bool quick = false;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args.model = v;
    } else if (flag == "--gpus") {
      if (!cli::ParsePositiveInt("--gpus", next(), &args.gpus)) return false;
    } else if (flag == "--max-evals") {
      uint64_t evals = 0;
      if (!cli::ParseUint64("--max-evals", next(), &evals)) return false;
      args.max_evals = static_cast<int64_t>(evals);
    } else if (flag == "--quick") {
      args.quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string RequestBody(const Args& args, uint64_t seed) {
  std::string body = "{\"model\":\"" + JsonEscape(args.model) + "\"";
  body += ",\"gpus\":" + std::to_string(args.gpus);
  body += ",\"budget_seconds\":600";
  body += ",\"max_evaluations\":" + std::to_string(args.max_evals);
  body += ",\"seed\":" + std::to_string(seed);
  body += ",\"client\":\"aceso_bench_serve\"}";
  return body;
}

struct PathReport {
  std::string path;
  int requests = 0;
  int failures = 0;
  double total_seconds = 0.0;
  double req_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[index];
}

// Sends `bodies` sequentially to the daemon, timing each round trip.
PathReport RunPath(const char* name, int port,
                   const std::vector<std::string>& bodies) {
  PathReport report;
  report.path = name;
  std::vector<double> latencies_ms;
  const double start = NowSeconds();
  for (const std::string& body : bodies) {
    const double t0 = NowSeconds();
    auto response = serve::HttpCall("127.0.0.1", port, "POST", "/plan", body);
    const double t1 = NowSeconds();
    ++report.requests;
    if (!response.ok() || response->status_code != 200) {
      ++report.failures;
      continue;
    }
    latencies_ms.push_back(1e3 * (t1 - t0));
  }
  report.total_seconds = NowSeconds() - start;
  report.req_per_sec =
      report.total_seconds > 0
          ? static_cast<double>(report.requests) / report.total_seconds
          : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.p50_ms = Percentile(latencies_ms, 0.5);
  report.p99_ms = Percentile(latencies_ms, 0.99);
  return report;
}

void WriteJson(const Args& args, const std::vector<PathReport>& paths,
               int64_t warm_profile_misses, int64_t cache_hits,
               int64_t cache_hit_requests) {
  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"model\": \"%s\",\n", JsonEscape(args.model).c_str());
  std::fprintf(f, "  \"gpus\": %d,\n", args.gpus);
  std::fprintf(f, "  \"max_evaluations\": %lld,\n",
               static_cast<long long>(args.max_evals));
  std::fprintf(f, "  \"quick\": %s,\n", args.quick ? "true" : "false");
  std::fprintf(f, "  \"warm_profile_misses\": %lld,\n",
               static_cast<long long>(warm_profile_misses));
  std::fprintf(f, "  \"cache_hits\": %lld,\n",
               static_cast<long long>(cache_hits));
  std::fprintf(f, "  \"cache_hit_requests\": %lld,\n",
               static_cast<long long>(cache_hit_requests));
  std::fprintf(f, "  \"paths\": [\n");
  for (size_t i = 0; i < paths.size(); ++i) {
    const PathReport& p = paths[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"path\": \"%s\",\n", p.path.c_str());
    std::fprintf(f, "      \"requests\": %d,\n", p.requests);
    std::fprintf(f, "      \"failures\": %d,\n", p.failures);
    std::fprintf(f, "      \"total_seconds\": %.4f,\n", p.total_seconds);
    std::fprintf(f, "      \"req_per_sec\": %.2f,\n", p.req_per_sec);
    std::fprintf(f, "      \"p50_ms\": %.3f,\n", p.p50_ms);
    std::fprintf(f, "      \"p99_ms\": %.3f\n", p.p99_ms);
    std::fprintf(f, "    }%s\n", i + 1 < paths.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--out FILE] [--model NAME] [--gpus N] "
                 "[--max-evals N] [--quick]\n",
                 argv[0]);
    return 2;
  }
  const int search_samples = args.quick ? 3 : 8;
  const int hit_samples = args.quick ? 50 : 200;

  // The same deterministic request set for the cold and warm phases: with a
  // fixed max_evaluations budget the warm searches replay the cold ones
  // bit-identically, touching exactly the same profile keys.
  std::vector<std::string> search_bodies;
  for (int i = 0; i < search_samples; ++i) {
    search_bodies.push_back(
        RequestBody(args, 1000 + static_cast<uint64_t>(i)));
  }

  const std::string snapshot_dir = "bench_serve_snapshots";
  std::vector<PathReport> paths;

  // ---- cold: fresh daemon, empty profile database ----
  int64_t cold_misses = 0;
  {
    serve::PlanDaemon daemon(serve::ServeOptions{});
    const Status started = daemon.Start("127.0.0.1", 0);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    paths.push_back(RunPath("cold", daemon.port(), search_bodies));
    cold_misses = daemon.service().stats().profile_misses;
    const Status saved = daemon.service().SaveProfiles(snapshot_dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "profile save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    daemon.Stop();
  }

  // ---- warm_profile + cache_hit: daemon warm-started from the snapshot ----
  int64_t warm_misses = 0;
  int64_t cache_hits = 0;
  {
    serve::ServeOptions options;
    options.snapshot_dir = snapshot_dir;
    serve::PlanDaemon daemon(options);
    const Status started = daemon.Start("127.0.0.1", 0);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    paths.push_back(RunPath("warm_profile", daemon.port(), search_bodies));
    warm_misses = daemon.service().stats().profile_misses;

    const std::vector<std::string> hit_bodies(hit_samples, search_bodies[0]);
    paths.push_back(RunPath("cache_hit", daemon.port(), hit_bodies));
    cache_hits = daemon.service().plan_cache_stats().hits;
    daemon.Stop();
  }

  for (const PathReport& p : paths) {
    std::printf("%-13s %4d requests in %7.3fs  %8.2f req/s  "
                "p50 %8.3fms  p99 %8.3fms%s\n",
                p.path.c_str(), p.requests, p.total_seconds, p.req_per_sec,
                p.p50_ms, p.p99_ms,
                p.failures > 0 ? "  ** FAILURES **" : "");
  }
  std::printf("profile misses: cold %lld, warm %lld; cache hits %lld/%d\n",
              static_cast<long long>(cold_misses),
              static_cast<long long>(warm_misses),
              static_cast<long long>(cache_hits), hit_samples);

  WriteJson(args, paths, warm_misses, cache_hits, hit_samples);
  std::printf("wrote %s\n", args.out.c_str());

  // Acceptance bars (DESIGN.md §14): the warm daemon re-runs the cold
  // searches without a single profile measurement, and every duplicate
  // request is a plan-cache hit.
  for (const PathReport& p : paths) {
    if (p.failures > 0) {
      std::fprintf(stderr, "FAIL: %d failed requests on the %s path\n",
                   p.failures, p.path.c_str());
      return 1;
    }
  }
  if (warm_misses != 0) {
    std::fprintf(stderr,
                 "FAIL: warm-started daemon took %lld profile misses "
                 "(expected 0)\n",
                 static_cast<long long>(warm_misses));
    return 1;
  }
  if (cache_hits != hit_samples) {
    std::fprintf(stderr, "FAIL: %lld plan-cache hits for %d duplicates\n",
                 static_cast<long long>(cache_hits), hit_samples);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace aceso

int main(int argc, char** argv) { return aceso::Main(argc, argv); }
