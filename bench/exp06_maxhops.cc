// Exp#6 — search efficiency under different maximum hop lengths
// (paper Figure 13).
//
// Runs fixed-stage-count searches on GPT-3 13B (6 and 8 stages) and
// Wide-ResNet 13B (8 and 9 stages — the paper's panels) under
// MaxHops in {1, 3, 7, 11} and prints each convergence trend.
//
// Paper claims to reproduce in shape: very small MaxHops can get stuck at a
// worse configuration; very large MaxHops spends too long inside single
// iterations; a moderate value (7) is robust.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#6: MaxHops ablation (Figure 13)",
              "Too-small MaxHops converges to worse plans; too-large wastes "
              "budget inside iterations; MaxHops=7 is a robust middle");

  struct Panel {
    const char* model;
    int gpus;
    int stages;
  };
  std::vector<Panel> panels = {
      {"gpt3-13b", 32, 6},
      {"gpt3-13b", 32, 8},
      {"wresnet-13b", 32, 8},
      {"wresnet-13b", 32, 9},
  };
  if (QuickMode()) {
    panels = {{"gpt3-1.3b", 8, 4}};
  }

  for (const Panel& panel : panels) {
    std::printf("\n--- %s, %d stages ---\n", panel.model, panel.stages);
    Workload workload(panel.model, panel.gpus);
    TablePrinter table({"MaxHops", "best pred iter(s)", "improvements",
                        "configs explored", "cand evaluated", "dedup%"});
    for (const int max_hops : {1, 3, 7, 11}) {
      // Fresh counters-only sink per run; the candidate-economy columns come
      // from the telemetry registry (DESIGN.md §10).
      TelemetryOptions topts;
      topts.ring_capacity = 0;
      TelemetrySink telemetry(topts);
      SearchOptions options = DefaultSearchOptions();
      options.max_hops = max_hops;
      options.telemetry = &telemetry;
      const SearchResult result =
          AcesoSearchForStages(workload.model(), options, panel.stages);
      const int64_t generated = telemetry.counter("search.candidates_generated");
      const int64_t deduped = telemetry.counter("search.candidates_deduped");
      table.AddRow({std::to_string(max_hops),
                    result.found
                        ? FormatDouble(result.best.perf.iteration_time, 2)
                        : "x",
                    std::to_string(result.stats.improvements),
                    std::to_string(result.stats.configs_explored),
                    std::to_string(
                        telemetry.counter("search.candidates_evaluated")),
                    generated > 0
                        ? FormatDouble(100.0 * static_cast<double>(deduped) /
                                           static_cast<double>(generated),
                                       1)
                        : "0"});
      PrintConvergence("MaxHops=" + std::to_string(max_hops),
                       result.convergence, 8);
    }
    table.Print(std::cout);
  }
  return 0;
}
