#include "src/obs/chrome_trace.h"

#include <algorithm>
#include <fstream>

#include "src/common/json.h"

namespace aceso {

std::string ToChromeTraceJson(const TraceDocument& doc) {
  std::string out;
  out.reserve(128 + doc.slices.size() * 96);
  out += "[\n";
  bool first = true;
  auto separator = [&] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };
  for (const auto& [tid, name] : doc.threads) {
    separator();
    out += R"({"name":"thread_name","ph":"M","pid":)";
    out += std::to_string(doc.pid);
    out += R"(,"tid":)";
    out += std::to_string(tid);
    out += R"(,"args":{"name":")";
    AppendJsonEscaped(out, name);
    out += R"("}})";
  }
  for (const TraceSlice& slice : doc.slices) {
    separator();
    out += R"({"name":")";
    AppendJsonEscaped(out, slice.name);
    out += R"(","ph":"X","pid":)";
    out += std::to_string(doc.pid);
    out += R"(,"tid":)";
    out += std::to_string(slice.tid);
    out += R"(,"ts":)";
    AppendJsonNumber(out, slice.ts_seconds * 1e6);
    out += R"(,"dur":)";
    AppendJsonNumber(out, slice.dur_seconds * 1e6);
    if (!slice.args.empty()) {
      out += R"(,"args":{)";
      bool first_arg = true;
      for (const auto& [key, value] : slice.args) {
        if (!first_arg) {
          out += ',';
        }
        first_arg = false;
        out += '"';
        AppendJsonEscaped(out, key);
        out += R"(":")";
        AppendJsonEscaped(out, value);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

Status WriteChromeTrace(const TraceDocument& doc, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Internal("cannot open trace file: " + path);
  }
  file << ToChromeTraceJson(doc);
  file.flush();
  if (!file) {
    return Internal("trace write failed: " + path);
  }
  return OkStatus();
}

namespace {

std::string IntArg(const TelemetryEvent& e, std::string_view key) {
  return std::to_string(e.GetInt(key).value_or(0));
}

}  // namespace

TraceDocument BuildSearchTrace(const std::vector<TelemetryEvent>& events) {
  TraceDocument doc;
  for (const TelemetryEvent& e : events) {
    const int tid = static_cast<int>(e.GetInt("worker").value_or(0));
    if (e.type() == "search_begin") {
      doc.threads.emplace_back(
          tid, "stages=" + std::to_string(e.GetInt("stages").value_or(0)));
    } else if (e.type() == "search_end") {
      TraceSlice span;
      const double dur = e.GetDbl("dur").value_or(0.0);
      span.name = "search stages=" + std::to_string(e.GetInt("stages").value_or(0));
      span.tid = tid;
      span.ts_seconds = e.GetDbl("t").value_or(0.0) - dur;
      span.dur_seconds = dur;
      span.args = {{"iterations", IntArg(e, "iterations")},
                   {"improvements", IntArg(e, "improvements")},
                   {"configs_explored", IntArg(e, "configs_explored")}};
      doc.slices.push_back(std::move(span));
    } else if (e.type() == "iteration") {
      TraceSlice slice;
      const bool accepted = e.GetBool("accepted").value_or(false);
      if (accepted) {
        const std::string* primitive = e.GetStr("primitive");
        slice.name = primitive != nullptr && !primitive->empty()
                         ? *primitive
                         : "accept";
        slice.name += " x" + IntArg(e, "hops");
      } else {
        slice.name = "reject";
      }
      slice.tid = tid;
      slice.ts_seconds = e.GetDbl("t").value_or(0.0);
      slice.dur_seconds = e.GetDbl("dur").value_or(0.0);
      slice.args = {
          {"iter", IntArg(e, "iter")},
          {"bottleneck_stage", IntArg(e, "bottleneck_stage")},
          {"bottleneck_resource",
           e.GetStr("bottleneck_resource") != nullptr
               ? *e.GetStr("bottleneck_resource")
               : ""},
          {"generated", IntArg(e, "generated")},
          {"deduped", IntArg(e, "deduped")},
          {"evaluated", IntArg(e, "evaluated")},
      };
      doc.slices.push_back(std::move(slice));
    }
  }
  // The per-iteration slices arrive interleaved across workers; Perfetto
  // does not require ordering, but deterministic output is nicer to diff.
  std::stable_sort(doc.slices.begin(), doc.slices.end(),
                   [](const TraceSlice& a, const TraceSlice& b) {
                     if (a.tid != b.tid) {
                       return a.tid < b.tid;
                     }
                     return a.ts_seconds < b.ts_seconds;
                   });
  std::stable_sort(doc.threads.begin(), doc.threads.end());
  return doc;
}

}  // namespace aceso
