file(REMOVE_RECURSE
  "libaceso_hw.a"
)
