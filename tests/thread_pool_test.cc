#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace aceso {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, WaitCanBeReused) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 50);
}

// The deadlock the work-stealing rewrite fixes: a task that submits subtasks
// and waits for them on a pool whose every worker is itself blocked in such a
// wait. On a 1-thread pool the old FIFO pool hung here unconditionally; the
// helping TaskGroup::Wait drains the subtasks on the waiter's own stack.
TEST(ThreadPoolTest, NestedSubmitAndGroupWaitOnSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<int> inner_runs{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 4; ++i) {
    outer.Submit([&pool, &inner_runs] {
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) {
        inner.Submit([&inner_runs] { inner_runs.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(inner_runs.load(), 32);
}

// Same shape, two levels of nesting, every worker saturated with waiters.
TEST(ThreadPoolTest, DeeplyNestedGroupsSaturatingAllWorkers) {
  ThreadPool pool(2);
  std::atomic<int> leaf_runs{0};
  TaskGroup top(pool);
  for (int i = 0; i < 6; ++i) {
    top.Submit([&pool, &leaf_runs] {
      TaskGroup mid(pool);
      for (int j = 0; j < 3; ++j) {
        mid.Submit([&pool, &leaf_runs] {
          TaskGroup leaf(pool);
          for (int k = 0; k < 3; ++k) {
            leaf.Submit([&leaf_runs] { leaf_runs.fetch_add(1); });
          }
          leaf.Wait();
        });
      }
      mid.Wait();
    });
  }
  top.Wait();
  EXPECT_EQ(leaf_runs.load(), 6 * 3 * 3);
}

// Pool-level Wait() called from inside a worker task must not wait for the
// caller's own wrapper task (it can never finish while Wait() is on its
// stack) — but must still drain everything else.
TEST(ThreadPoolTest, PoolWaitFromInsideWorkerTask) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();  // old pool: deadlock (in_flight includes ourselves)
    EXPECT_EQ(count.load(), 5);
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 5);
}

// A task exception surfaces from the owning TaskGroup's Wait(), and the
// group still drains completely.
TEST(ThreadPoolTest, GroupWaitRethrowsTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 10; ++i) {
    group.Submit([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) {
        throw std::runtime_error("boom");
      }
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);
  group.Wait();  // error consumed; a second wait is clean
}

// Group-less Submit() errors surface from the pool-level Wait() instead.
TEST(ThreadPoolTest, PoolWaitRethrowsUngroupedTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("loose"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // consumed
}

// An exception in one group must not leak into a sibling group or the pool.
TEST(ThreadPoolTest, ExceptionsStayWithTheirGroup) {
  ThreadPool pool(2);
  TaskGroup bad(pool);
  TaskGroup good(pool);
  bad.Submit([] { throw std::runtime_error("bad group"); });
  good.Submit([] {});
  good.Wait();  // must not throw
  EXPECT_THROW(bad.Wait(), std::runtime_error);
  pool.Wait();  // must not throw
}

// ParallelFor from inside a pool task — the AcesoSearch shape, where an
// outer stage-count search fans evaluation batches onto the same pool.
TEST(ParallelForTest, NestsInsidePoolTasks) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(pool, 4, [&pool, &total](size_t) {
    ParallelFor(pool, 16, [&total](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

// Stats sanity: executed covers every submission, and a steal shows up when
// a worker drains a sibling's deque. (Steal counts are scheduling-dependent,
// so only invariants are asserted.)
TEST(ThreadPoolTest, StatsCountExecutionsAndSteals) {
  ThreadPool pool(4);
  const ThreadPoolStats before = pool.stats();
  std::atomic<int> count{0};
  ParallelFor(pool, 200, [&count](size_t) { count.fetch_add(1); });
  const ThreadPoolStats delta = pool.stats() - before;
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(delta.submitted, 200);
  EXPECT_EQ(delta.executed, 200);
  EXPECT_GE(delta.stolen, 0);
  EXPECT_LE(delta.stolen, 200);
  EXPECT_GE(delta.helped, 0);
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(pool, 64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not run"; });
}

}  // namespace
}  // namespace aceso
