
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_sweep_test.cc" "tests/CMakeFiles/baseline_sweep_test.dir/baseline_sweep_test.cc.o" "gcc" "tests/CMakeFiles/baseline_sweep_test.dir/baseline_sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/aceso_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aceso_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/aceso_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/aceso_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/aceso_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/aceso_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/aceso_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aceso_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aceso_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aceso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
