// Shared model/cluster loading for the CLI tools (aceso_search, aceso_plan,
// aceso_serve, the benches). One place owns the BuildByName → WithGpuCount
// sequence and its error reporting, so every tool rejects an unknown model
// with the same message — including the list of known zoo names — instead
// of each tool growing its own variant.

#ifndef TOOLS_TOOL_COMMON_H_
#define TOOLS_TOOL_COMMON_H_

#include <string>

#include "src/common/status.h"
#include "src/hw/cluster.h"
#include "src/ir/op_graph.h"

namespace aceso {
namespace tools {

struct ModelAndCluster {
  OpGraph graph;
  ClusterSpec cluster;
};

// Builds the zoo model `model` and the `gpus`-wide cluster. An unknown
// model name fails with the zoo's names appended, so the caller can print
// the status verbatim.
StatusOr<ModelAndCluster> LoadModelAndCluster(const std::string& model,
                                              int gpus);

// The canonical "models: ..." usage lines shared by every tool's
// PrintUsage (newline-terminated).
const char* ZooUsageLines();

}  // namespace tools
}  // namespace aceso

#endif  // TOOLS_TOOL_COMMON_H_
