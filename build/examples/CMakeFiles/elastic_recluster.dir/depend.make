# Empty dependencies file for elastic_recluster.
# This may be replaced when dependencies are built.
