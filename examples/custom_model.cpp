// Bringing your own model: builds a custom encoder-style transformer with
// the model-builder API, inspects the per-stage resource picture of a
// manual configuration, and lets Aceso improve it.
//
//   ./build/examples/custom_model

#include <cstdio>
#include <iostream>

#include "src/aceso.h"

int main() {
  using namespace aceso;

  // 1. Assemble a model: a 16-layer ViT-style encoder with a wide FFN.
  OpGraph model("my-encoder", Precision::kFp16, /*global_batch_size=*/512);
  AppendEmbedding(model, "", /*vocab=*/32000, /*hidden=*/1536,
                  /*seq_len=*/1024);
  TransformerLayerSpec layer;
  layer.hidden = 1536;
  layer.ffn_hidden = 8192;
  layer.num_heads = 16;
  layer.seq_len = 1024;
  for (int i = 0; i < 16; ++i) {
    AppendTransformerLayer(model, "enc" + std::to_string(i) + ".", layer);
  }
  AppendLmHead(model, "", 32000, 1536, 1024);
  std::printf("%s\n\n", model.Summary().c_str());

  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  PerformanceModel perf_model(&model, cluster, &db);

  // 2. Start from a hand-written plan: 2 stages, tensor parallelism inside.
  auto manual = MakeEvenConfig(model, cluster, /*num_stages=*/2,
                               /*microbatch_size=*/2);
  ACESO_CHECK(manual.ok()) << manual.status().ToString();
  const PerfResult manual_perf = perf_model.Evaluate(*manual);
  std::printf("manual plan: %s\n", manual->ShortString().c_str());
  std::printf("  predicted: %s\n", manual_perf.Summary().c_str());
  for (size_t s = 0; s < manual_perf.stages.size(); ++s) {
    const StageUsage& u = manual_perf.stages[s];
    std::printf(
        "  stage %zu: fwd %s bwd %s | comp share %.0f%%, comm share %.0f%% | "
        "mem %s\n",
        s, FormatSeconds(u.fwd_time).c_str(),
        FormatSeconds(u.bwd_time).c_str(),
        100 * u.TimeShare(Resource::kComputation),
        100 * u.TimeShare(Resource::kCommunication),
        FormatBytes(u.memory_bytes).c_str());
  }

  // 3. Ask Heuristic-1 where the bottleneck is.
  const auto bottlenecks = OrderedBottlenecks(manual_perf);
  std::printf("\nbottleneck: stage %d (%s)\n", bottlenecks[0].stage,
              bottlenecks[0].memory_bound ? "memory" : "time");

  // 4. Let Aceso search from scratch and compare.
  SearchOptions options;
  options.time_budget_seconds = 2.0;
  const SearchResult result = AcesoSearch(perf_model, options);
  ACESO_CHECK(result.found);
  std::printf("\nAceso plan:  %s\n", result.best.config.ShortString().c_str());
  std::printf("  predicted: %s\n", result.best.perf.Summary().c_str());
  std::printf("  speedup over manual plan: %.2fx\n",
              manual_perf.iteration_time / result.best.perf.iteration_time);

  // 5. Execute both in the simulated runtime for the ground truth.
  PipelineExecutor executor(&perf_model);
  const ExecutionResult manual_run = executor.Execute(*manual);
  const ExecutionResult aceso_run = executor.Execute(result.best.config);
  std::printf("\nactual:  manual %.1f samples/s -> Aceso %.1f samples/s\n",
              manual_run.Throughput(model.global_batch_size()),
              aceso_run.Throughput(model.global_batch_size()));
  return 0;
}
