// Batched SoA evaluation of sibling candidate groups (DESIGN.md §13).
//
// One MultiHop candidate group consists of configurations that all derive
// from the same base config and (by primitive construction) differ from it
// in one or two stages. Scoring them one Evaluate() at a time re-resolves
// the *shared* stages once per candidate: a semantic hash, a cache lookup,
// and a per-stage reduction each, for stages whose cost the whole group has
// in common. CandidateBatch scores the group as N lanes over one flat
// struct-of-arrays cost table indexed [stage][lane]:
//
//   1. Resolution: for every stage, lanes are grouped by the O(1) key
//      (StageBlockIdentity, first device, microbatch size). Each distinct
//      group is resolved exactly once — the same StageSemanticHash → cache
//      lookup → ComputeStageCost walk Evaluate() performs — and the
//      resulting StageCost is broadcast to every lane of the group. A
//      mutated stage forms its own group and is walked per-lane through the
//      run-compressed fast path (DESIGN.md §12).
//   2. Reduction: the Eq.1 memory totals and Eq.2 warmup/steady/cooldown
//      prefixes are computed with stage-major loops whose inner dimension is
//      the lane — independent double accumulators side by side, the
//      SIMD-friendly layout — replaying, for each lane, exactly the
//      arithmetic sequence Evaluate() performs for that config alone.
//
// Bit-exactness: a lane's PerfResult is bit-identical to
// model.Evaluate(*config) in every field. Resolution produces bit-equal
// StageCosts (the cache key covers every walk input, and cached vs computed
// costs are already bit-identical by the §8 contract); the reduction then
// touches each lane's accumulators in Evaluate()'s exact order, and IEEE
// arithmetic on independent lanes cannot interact. Property-tested in
// fuzz_property_test and pinned by the golden-trajectory search tests.
//
// Thread-safety: a CandidateBatch is single-threaded; concurrent batches
// over one model are safe (the stage cache and profile database are
// internally synchronized), which is how the search splits large groups
// across its evaluation pool.

#ifndef SRC_COST_BATCH_EVAL_H_
#define SRC_COST_BATCH_EVAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/config/parallel_config.h"
#include "src/cost/perf_model.h"
#include "src/cost/resource_usage.h"

namespace aceso {

// Diagnostics of one batch's sharing structure (flushed into the search's
// `search.batch_*` telemetry counters).
struct BatchEvalStats {
  int64_t batches = 0;      // EvaluateAll() calls that scored >= 1 lane
  int64_t lanes = 0;        // active lanes scored
  int64_t stage_groups = 0; // distinct per-stage resolutions performed
  // Per-stage resolutions avoided because a sibling lane shared the stage:
  // sum over stages of (lanes in group - 1).
  int64_t shared_lookups_saved = 0;

  BatchEvalStats& operator+=(const BatchEvalStats& other) {
    batches += other.batches;
    lanes += other.lanes;
    stage_groups += other.stage_groups;
    shared_lookups_saved += other.shared_lookups_saved;
    return *this;
  }
};

class CandidateBatch {
 public:
  explicit CandidateBatch(const PerformanceModel& model) : model_(model) {}

  // Drops all lanes and resets stats; reduction scratch stays allocated so
  // a reused batch amortizes its SoA allocations across candidate groups.
  void Clear();

  // Adds one candidate lane; returns its lane index. The config is not
  // copied and must stay alive and unmutated through EvaluateAll(). Every
  // lane of a batch must have the same stage count (the search's candidate
  // groups do by construction: primitives never change the stage count).
  int AddLane(const ParallelConfig* config);

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int num_stages() const { return num_stages_; }

  // Lane masking for budget cuts: an inactive lane is not resolved, not
  // reduced, not charged to the model's evaluation count, and its perf()
  // must not be read. Lanes start active.
  void SetActive(int lane, bool active) {
    lanes_.at(static_cast<size_t>(lane)).active = active;
  }
  bool active(int lane) const {
    return lanes_.at(static_cast<size_t>(lane)).active;
  }

  // Resolves every active lane's stage costs (shared stages once, broadcast)
  // and runs the per-lane reduction. After this, perf(lane) for every active
  // lane is bit-identical to model.Evaluate(*config(lane)).
  void EvaluateAll();

  const PerfResult& perf(int lane) const {
    return lanes_.at(static_cast<size_t>(lane)).perf;
  }
  PerfResult TakePerf(int lane) {
    return std::move(lanes_.at(static_cast<size_t>(lane)).perf);
  }

  const BatchEvalStats& stats() const { return stats_; }

  // Test hook: the resolved cost entry of (stage, lane) after EvaluateAll().
  // Pointer equality across lanes certifies the broadcast actually shared
  // the resolution (not just produced equal values).
  const StageCost* stage_cost_for_testing(int stage, int lane) const {
    return costs_.at(static_cast<size_t>(stage) * lanes_.size() +
                     static_cast<size_t>(lane));
  }

 private:
  struct Lane {
    const ParallelConfig* config = nullptr;
    bool active = true;
    PerfResult perf;
  };

  const PerformanceModel& model_;
  std::vector<Lane> lanes_;
  int num_stages_ = -1;

  // SoA cost table, indexed [stage * num_lanes + lane]; entries of lanes
  // sharing a stage point at one StageCost. keepalive_ owns the costs this
  // batch resolved itself (cache hits are owned by the cache's shared_ptr,
  // also parked here so eviction cannot free them mid-reduction).
  std::vector<const StageCost*> costs_;
  std::vector<std::shared_ptr<const StageCost>> keepalive_;

  // Reduction scratch (per-lane accumulators), kept across batches to
  // amortize allocation.
  std::vector<double> warmup_prefix_;
  std::vector<double> cooldown_prefix_;
  std::vector<int64_t> num_microbatches_;
  std::vector<double> max_time_;
  std::vector<int64_t> max_mem_;

  BatchEvalStats stats_;
};

}  // namespace aceso

#endif  // SRC_COST_BATCH_EVAL_H_
