// Persistence for parallel configurations: the search's output can be saved
// to disk and reloaded by the runtime/tools (the paper's workflow runs
// search and training as separate steps).

#ifndef SRC_CONFIG_CONFIG_IO_H_
#define SRC_CONFIG_CONFIG_IO_H_

#include <string>

#include "src/common/status.h"
#include "src/config/parallel_config.h"

namespace aceso {

// Serializes `config` to the text-record format. The model name is embedded
// so loads can be checked against the intended graph.
std::string SerializeConfig(const ParallelConfig& config,
                            const std::string& model_name);

// Parses a serialized configuration; validates structure against `graph`
// and rejects configs saved for a different model name.
StatusOr<ParallelConfig> ParseConfig(const std::string& text,
                                     const OpGraph& graph);

// Whole-file helpers.
Status SaveConfigToFile(const std::string& path, const ParallelConfig& config,
                        const std::string& model_name);
StatusOr<ParallelConfig> LoadConfigFromFile(const std::string& path,
                                            const OpGraph& graph);

}  // namespace aceso

#endif  // SRC_CONFIG_CONFIG_IO_H_
