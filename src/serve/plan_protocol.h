// Wire protocol of the planning daemon (DESIGN.md §14).
//
// A plan request is one JSON object carrying the model name, the cluster
// size, and the SearchOptions budget knobs. Parsing is *strict*: unknown
// fields are rejected (a typo'd "max_evals" must not silently run with the
// default budget), types are checked, and every error carries the offending
// field. The request splits into two kinds of fields:
//
//   * semantic fields — model, gpus, budgets, toggles, seed, stage range —
//     which determine the answer and therefore feed the plan-cache key
//     (PlanCacheKey below composes the model / cluster / options
//     fingerprints from src/ir, src/hw, and src/core);
//   * non-semantic fields — request_id, client, stream, eval_threads —
//     which shape execution or bookkeeping but are bit-identity no-ops on
//     the plan, and are excluded from the key.
//
// The response payload (BuildPlanPayload) is a self-contained JSON object —
// plan, predicted performance, search stats, capped convergence trend — and
// is exactly what the PlanCache stores: a cache hit replays the stored
// payload byte for byte.

#ifndef SRC_SERVE_PLAN_PROTOCOL_H_
#define SRC_SERVE_PLAN_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/core/search.h"
#include "src/hw/cluster.h"
#include "src/ir/op_graph.h"

namespace aceso {
namespace serve {

// One parsed plan request. Field defaults match the CLI tools'.
struct PlanRequest {
  // ---- semantic fields (feed the plan-cache key) ----
  std::string model;            // required: zoo name, e.g. "gpt3-1.3b"
  int gpus = 8;                 // cluster size (nodes of 8, like the tools)
  double budget_seconds = 2.0;  // wall-clock search budget
  int64_t max_evaluations = 0;  // deterministic budget (0 = wall-clock only)
  int max_hops = 7;
  int stages = 0;      // fixed stage count (0 = search the full range)
  int min_stages = 1;  // ignored when `stages` is set
  int max_stages = 0;
  uint64_t seed = 20240422;
  SeedMode seed_mode = SeedMode::kHeuristic;
  int top_k = 5;
  // Track the throughput–memory Pareto frontier and embed it in the payload
  // (DESIGN.md §15). Semantic: it adds a member to the answer.
  bool frontier = false;
  // Per-device memory budget for feasibility verdicts (bytes; 0 = device
  // capacity). Semantic: it changes every verdict.
  int64_t memory_budget_bytes = 0;

  // ---- sweep lookup ----
  // Non-empty turns the request into a budget sweep: the search runs once
  // in frontier mode at device capacity (the key is the base frontier
  // request's, so `memory_budgets` itself never feeds the cache key), and
  // each listed budget is answered from the frontier via BestUnderBudget —
  // a warm cache answers the whole sweep without entering AcesoSearch.
  // Mutually exclusive with memory_budget_bytes.
  std::vector<int64_t> memory_budgets;

  // ---- non-semantic fields ----
  std::string request_id;  // echoed in the response; empty = daemon assigns
  std::string client;      // free-form client tag for logs
  bool stream = false;     // stream telemetry/convergence events (NDJSON)
  int eval_threads = 0;    // 0 = service default; bit-identity no-op
};

// Strict parse of a request document: every member must be a known field of
// the right type; `model` is required. Does not validate the model name
// against the zoo (the service does, so the error can list valid names).
StatusOr<PlanRequest> ParsePlanRequest(const JsonValue& doc);

// ParsePlanRequest over raw bytes (JsonParse + parse).
StatusOr<PlanRequest> ParsePlanRequestJson(std::string_view body);

// The SearchOptions a request denotes. A fixed `stages` collapses the stage
// range to [stages, stages] so the request always runs through AcesoSearch
// (one code path, one cache-key shape). `default_eval_threads` supplies the
// service-level evaluation parallelism when the request leaves it 0.
SearchOptions ToSearchOptions(const PlanRequest& request,
                              int default_eval_threads);

// The cross-request cache key: model structure (OpGraph::SemanticFingerprint,
// name excluded), cluster (ClusterSpec::Fingerprint), and the
// answer-determining SearchOptions fields (SearchOptionsSemanticHash). Each
// component is Mix64-finalized before combining (src/common/hash.h).
uint64_t PlanCacheKey(const OpGraph& graph, const ClusterSpec& cluster,
                      const SearchOptions& options);

// Family fingerprints for the plan cache's similarity index (DESIGN.md
// §17). ModelFamilyFingerprint hashes the model's *distinct* op-signature
// skeleton (first-appearance order) plus precision — invariant under layer-
// count changes of repeated-block models. ClusterFamilyFingerprint hashes
// the GPU type and link parameters, excluding node/device counts.
// NeighborFamilyKey combines both into the similarity-index bucket key;
// layer count, device count, and memory budget stay out of the key because
// they are the probe's scored distance features.
uint64_t ModelFamilyFingerprint(const OpGraph& graph);
uint64_t ClusterFamilyFingerprint(const ClusterSpec& cluster);
uint64_t NeighborFamilyKey(const OpGraph& graph, const ClusterSpec& cluster);

// Serializes the search outcome as the cacheable response payload (one JSON
// object; see the module comment). `convergence_cap` bounds the embedded
// trend (the full trend can run to thousands of points on long budgets).
std::string BuildPlanPayload(const OpGraph& graph, const ClusterSpec& cluster,
                             const SearchResult& result,
                             size_t convergence_cap = 64);

// Derives a budget-sweep payload from a (possibly cached) plan payload that
// embeds a frontier: per budget, the best archived config that fits. Echoes
// the base payload's model/cluster members so the sweep is self-contained.
// Fails (FailedPrecondition) when the payload carries no frontier — e.g. it
// was cached by a non-frontier request — and the caller falls back to a
// fresh frontier search.
StatusOr<std::string> BuildBudgetSweepPayload(
    const std::string& plan_payload_json,
    const std::vector<int64_t>& budgets);

// Wraps a payload (or an error) in the response envelope:
//   {"status":"ok","request_id":...,"cache":"miss|hit|coalesced",
//    "payload":{...}}
//   {"status":"error","request_id":...,"code":"INVALID_ARGUMENT",
//    "message":"..."}
std::string BuildResponseEnvelope(const std::string& request_id,
                                  std::string_view cache,
                                  const std::string& payload_json);
// The envelope prefix up to and including `"payload":`. The full ok
// envelope is exactly Head + payload + "}" — the daemon sends cached
// payloads as [head | shared payload | "}"] iovecs, and the concatenation
// is bit-identical to BuildResponseEnvelope (asserted by the serve bench).
std::string BuildResponseEnvelopeHead(const std::string& request_id,
                                      std::string_view cache);
std::string BuildErrorEnvelope(const std::string& request_id,
                               const Status& error);

}  // namespace serve
}  // namespace aceso

#endif  // SRC_SERVE_PLAN_PROTOCOL_H_
