// Lock-free op-breakdown memo — the op-level layer of the walk cache
// hierarchy (DESIGN.md §12).
//
// A stage-cache miss used to walk every op in the stage and pay 2–6 locked
// ProfileDatabase lookups per op, even though deep models are mostly
// identical transformer layers whose ops repeat the same (semantic word,
// layout-state) context over and over. This memo caches the full OpBreakdown
// per *context key* — op signature, packed semantic word, microbatch size,
// incoming activation layout, dp-reshard bit, and the stage's placement
// context — so a repeated layer costs one hash + one lock-free probe instead
// of a re-derivation through the profile database.
//
// Concurrency: an insert-only open-addressing table of atomic entry
// pointers. Entries are immutable once published (release store, acquire
// load), lookups acquire no locks, and inserts are first-writer-wins CAS —
// every writer computes the same bits for a key (the breakdown is a pure
// function of the key's inputs and the deterministic profile database), so
// losing a race never changes observable values. The table never grows or
// evicts: once full (or a probe run exceeds the bound), inserts are dropped
// and those contexts simply recompute — a bounded-memory backstop, not a
// steady-state mode (capacity comfortably exceeds the distinct contexts a
// search visits).

#ifndef SRC_COST_OP_MEMO_H_
#define SRC_COST_OP_MEMO_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace aceso {

struct OpBreakdown;  // src/cost/perf_model.h

struct OpMemoOptions {
  // Master switch: a disabled memo never stores anything and every Lookup
  // misses (without counting), so the model falls back to per-op
  // re-derivation.
  bool enabled = true;

  // Slot count; rounded up to a power of two. Inserts stop at 7/8
  // occupancy to keep probe runs short.
  size_t capacity = 1 << 16;
};

// Monotonic counters; `operator-` attributes a delta to one search run,
// like StageCacheStats / ProfileDbStats.
struct OpMemoStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts_dropped = 0;  // table full or probe bound exceeded
  int64_t entries = 0;          // current size, not a delta-able counter

  OpMemoStats operator-(const OpMemoStats& other) const {
    OpMemoStats d;
    d.hits = hits - other.hits;
    d.misses = misses - other.misses;
    d.inserts_dropped = inserts_dropped - other.inserts_dropped;
    d.entries = entries;
    return d;
  }
};

class OpBreakdownMemo {
 public:
  explicit OpBreakdownMemo(const OpMemoOptions& options = {});
  ~OpBreakdownMemo();

  OpBreakdownMemo(const OpBreakdownMemo&) = delete;
  OpBreakdownMemo& operator=(const OpBreakdownMemo&) = delete;

  // Returns the published breakdown for `key`, or nullptr on a miss. The
  // pointer is stable until Clear() or destruction. Lock-free: one relaxed
  // counter bump plus an acquire probe. A disabled memo always returns
  // nullptr without counting.
  const OpBreakdown* Lookup(uint64_t key) const;

  // Publishes a copy of `value` under `key` (first-writer-wins; the
  // survivor is returned either way). Returns nullptr only when the insert
  // was dropped — table full, probe bound exceeded, or memo disabled —
  // in which case the caller keeps using its own computed value.
  const OpBreakdown* Insert(uint64_t key, const OpBreakdown& value);

  bool enabled() const { return enabled_; }
  // Setup-time toggle; not synchronized against concurrent Lookup/Insert.
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (!enabled) {
      Clear();
    }
  }

  // Drops every entry. Setup-time only: callers must guarantee no
  // concurrent Lookup/Insert and no outstanding entry pointers.
  void Clear();

  OpMemoStats stats() const;

 private:
  // Defined in the .cc (OpBreakdown is incomplete here); the entry embeds
  // the key and the breakdown by value, so a hit is one pointer chase.
  struct Entry;

  // Longest tolerated probe run; beyond it the insert is dropped. Keeps
  // worst-case lookups O(1) even under adversarial key clustering.
  static constexpr size_t kMaxProbe = 64;

  bool enabled_ = true;
  size_t mask_ = 0;
  std::vector<std::atomic<const Entry*>> slots_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_dropped_{0};
  std::atomic<int64_t> entries_{0};
};

}  // namespace aceso

#endif  // SRC_COST_OP_MEMO_H_
