// Parallel DNN training configuration (§3.1 "Configuration representation").
//
// A configuration partitions the model's operator chain into contiguous
// pipeline stages, assigns each stage a contiguous device range, gives every
// operator a (tp, dp) pair with tp*dp == stage devices, a tensor-parallel
// partition dimension, and a recompute flag, and fixes one global microbatch
// size. This representation can express Megatron-LM and Alpa configurations
// (uniform settings) as well as Aceso's heterogeneous per-op plans.

#ifndef SRC_CONFIG_PARALLEL_CONFIG_H_
#define SRC_CONFIG_PARALLEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/cluster.h"
#include "src/ir/op_graph.h"

namespace aceso {

// Per-operator parallelism settings.
struct OpParallel {
  int tp = 1;                     // tensor-parallel degree
  int dp = 1;                     // data-parallel degree (tp*dp = stage GPUs)
  TpDim tp_dim = TpDim::kColumn;  // partition dimension when tp > 1
  bool recompute = false;         // release output, re-run fwd during bwd
  // Extension (inc-zero/dec-zero primitives): ZeRO-style sharding of the
  // op's optimizer state across its dp group — less memory, an extra
  // parameter all-gather per iteration. Only meaningful when dp > 1.
  bool zero_opt = false;

  bool operator==(const OpParallel& other) const {
    return tp == other.tp && dp == other.dp && tp_dim == other.tp_dim &&
           recompute == other.recompute && zero_opt == other.zero_opt;
  }
};

// One pipeline stage: a contiguous op range on a contiguous device range.
struct StageConfig {
  int first_op = 0;
  int num_ops = 0;
  int num_devices = 1;
  std::vector<OpParallel> ops;  // size == num_ops

  int end_op() const { return first_op + num_ops; }

  // Applies (tp, dp, dim) to every op in the stage, clamping tp at each op's
  // max_tp (dp absorbs the difference). Recompute flags are preserved.
  void SetUniformParallelism(const OpGraph& graph, int tp, int dp);

  // Count of recomputed ops in this stage.
  int NumRecomputed() const;
};

class ParallelConfig {
 public:
  ParallelConfig() = default;

  int microbatch_size() const { return microbatch_size_; }
  void set_microbatch_size(int mbs) { microbatch_size_ = mbs; }

  int num_stages() const { return static_cast<int>(stages_.size()); }
  const StageConfig& stage(int i) const {
    return stages_.at(static_cast<size_t>(i));
  }
  StageConfig& mutable_stage(int i) { return stages_.at(static_cast<size_t>(i)); }
  const std::vector<StageConfig>& stages() const { return stages_; }
  std::vector<StageConfig>& mutable_stages() { return stages_; }

  // First global device index of stage i (stages occupy contiguous ranges in
  // stage order).
  int StageFirstDevice(int stage_index) const;

  // Sum of per-stage device counts.
  int TotalDevices() const;

  // The per-op settings for global op index `op_index`.
  const OpParallel& OpSettings(int op_index) const;
  OpParallel& MutableOpSettings(int op_index);

  // Stage that owns global op `op_index`.
  int StageOfOp(int op_index) const;

  // Number of microbatches per iteration for `graph` (batch / mbs).
  int64_t NumMicrobatches(const OpGraph& graph) const;

  // Structural + semantic validation against a model and cluster:
  // contiguous full coverage, device counts match the cluster, power-of-two
  // tp/dp with tp*dp == stage devices, tp within per-op limits, microbatch
  // divisibility. Returns the first violation found.
  Status Validate(const OpGraph& graph, const ClusterSpec& cluster) const;

  // Configuration-semantic hash for deduplication (§4.3): equal iff the
  // stage partition, per-op settings, and microbatch size are equal.
  // Partition dimensions of ops whose tp == 1 are canonicalized away.
  uint64_t SemanticHash(const OpGraph& graph) const;

  // Key for the incremental stage-cost cache: hashes everything
  // PerformanceModel::WalkStage() reads for stage `stage_index` — the op
  // range, per-op settings (canonicalized like SemanticHash), microbatch
  // size, stage width, and the stage's device-placement context. On the
  // homogeneous-node cluster model, every topology question the walk asks
  // (collective node-crossing, inter-stage p2p link class) is a function of
  // the stage's first-device offset within its node and whether the stage
  // receives pipeline input at all, so those two facts are the entire
  // placement context. Keys are only comparable within one (graph, cluster)
  // pair — exactly the lifetime of a PerformanceModel.
  uint64_t StageSemanticHash(const OpGraph& graph, const ClusterSpec& cluster,
                             int stage_index) const;

  // Multi-line human-readable dump.
  std::string ToString(const OpGraph& graph) const;

  // Compact one-line summary: "mbs=2 | s0[ops 0-25 g4 tp2 dp2 rc12] | ...".
  std::string ShortString() const;

 private:
  int microbatch_size_ = 1;
  std::vector<StageConfig> stages_;
};

// ----- Initial configuration generators (§5.1, Exp#7) -----

// Balanced default: `num_stages` stages with FLOP-balanced contiguous op
// ranges, power-of-two device counts as equal as possible, pure data
// parallelism inside each stage (tp clamped per op), minimum microbatch
// size, full recomputation off. Returns an error when `num_stages` exceeds
// the device or op count or the device count cannot be split.
StatusOr<ParallelConfig> MakeEvenConfig(const OpGraph& graph,
                                        const ClusterSpec& cluster,
                                        int num_stages, int microbatch_size);

// Exp#7's adversarial starts: op-imbalanced (stage op counts skewed) and
// GPU-imbalanced (device counts skewed).
StatusOr<ParallelConfig> MakeOpImbalancedConfig(const OpGraph& graph,
                                                const ClusterSpec& cluster,
                                                int num_stages,
                                                int microbatch_size);
StatusOr<ParallelConfig> MakeGpuImbalancedConfig(const OpGraph& graph,
                                                 const ClusterSpec& cluster,
                                                 int num_stages,
                                                 int microbatch_size);

// Splits `total` devices into `parts` power-of-two chunks, as equal as
// possible (e.g. 32 into 3 -> {16, 8, 8}). `total` must be a power of two
// and parts <= total.
StatusOr<std::vector<int>> SplitDevicesPow2(int total, int parts);

// True if v is a power of two (v >= 1).
bool IsPow2(int v);

// Clamps a requested stage-level tp for one op: partitioned ops cannot shard
// weights beyond max_tp; followers and replicated ops can always "over-shard"
// (the excess is replication, handled by the cost model).
int ClampOpTp(const Operator& op, int tp);

}  // namespace aceso

#endif  // SRC_CONFIG_PARALLEL_CONFIG_H_
