file(REMOVE_RECURSE
  "CMakeFiles/exp10_primitive_table.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp10_primitive_table.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp10_primitive_table.dir/bench/exp10_primitive_table.cc.o"
  "CMakeFiles/exp10_primitive_table.dir/bench/exp10_primitive_table.cc.o.d"
  "bench/exp10_primitive_table"
  "bench/exp10_primitive_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_primitive_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
