file(REMOVE_RECURSE
  "CMakeFiles/profile_db_test.dir/profile_db_test.cc.o"
  "CMakeFiles/profile_db_test.dir/profile_db_test.cc.o.d"
  "profile_db_test"
  "profile_db_test.pdb"
  "profile_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
