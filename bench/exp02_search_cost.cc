// Exp#2 — configuration search cost (paper Figure 8).
//
// Compares Aceso's search cost against the Alpa-like solver across the
// GPT-3 and Wide-ResNet ladders. Aceso's cost is its (budgeted) anytime
// search; Alpa's is solver wall-clock plus the on-demand XLA
// compile-and-profile time its search design requires per experiment.
// Megatron-LM is omitted, as in the paper: it has no automated search.
//
// Paper claim to reproduce in shape: "Among all the cases, Aceso uses less
// than 5% of the time used by Alpa."

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"

namespace aceso {
namespace bench {
namespace {

// Wall-clock ratio of a fixed-work search (deterministic evaluation budget)
// at eval_threads=1 vs 4: the DESIGN.md §11 intra-search parallel-evaluation
// speedup. The trajectory is bit-identical at both settings, so the ratio
// compares equal work.
double EvalParallelSpeedup(const PerformanceModel& model) {
  // Pool construction sits outside the timed region: the column measures
  // the search, not thread startup (which dwarfs the tiny 1-GPU settings).
  ThreadPool pool(4);
  auto timed = [&model, &pool](int eval_threads) {
    SearchOptions options = DefaultSearchOptions();
    options.time_budget_seconds = 1e9;
    options.max_evaluations = QuickMode() ? 200 : 800;
    options.eval_threads = eval_threads;
    if (eval_threads > 1) {
      options.eval_pool = &pool;
    }
    const auto start = std::chrono::steady_clock::now();
    AcesoSearchForStages(model, options, 2);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  timed(1);  // discarded warm-up: both timed runs see warm shared caches
  const double serial = timed(1);
  const double parallel = timed(4);
  return parallel > 0 ? serial / parallel : 0.0;
}

void RunFamily(const std::string& prefix, const std::vector<double>& sizes,
               TablePrinter& table) {
  for (size_t i = 0; i < sizes.size(); ++i) {
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%g", sizes[i]);
    const std::string model_name = prefix + size_buf + "b";
    const int gpus = models::GpusForSizeIndex(static_cast<int>(i));
    Workload workload(model_name, gpus);

    SearchOptions options = DefaultSearchOptions();
    const SearchResult aceso = AcesoSearch(workload.model(), options);
    const auto alpa = AlpaLikeSearch(workload.model());

    std::string alpa_cell = "failed";
    std::string ratio_cell = "n/a";
    if (alpa.ok() && alpa->found) {
      alpa_cell = FormatDouble(alpa->TotalSearchSeconds(), 1);
      ratio_cell = FormatDouble(
          100.0 * aceso.search_seconds / alpa->TotalSearchSeconds(), 2);
      ratio_cell += "%";
    }
    table.AddRow({model_name + " @" + std::to_string(gpus) + "gpu",
                  FormatDouble(aceso.search_seconds, 1), alpa_cell,
                  ratio_cell,
                  FormatDouble(EvalParallelSpeedup(workload.model()), 2) +
                      "x"});
  }
}

}  // namespace
}  // namespace bench
}  // namespace aceso

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#2: search cost (Figure 8)",
              "Aceso uses less than 5% of Alpa's search time in every case");
  TablePrinter table({"setting", "Aceso search(s)", "Alpa search(s)",
                      "Aceso/Alpa", "par-eval 4T"});
  RunFamily("gpt3-", GptSizes(), table);
  RunFamily("wresnet-", WrnSizes(), table);
  table.Print(std::cout);
  std::printf(
      "\nNote: Alpa's cost includes its per-experiment on-demand XLA kernel\n"
      "compilation+profiling (simulated; see DESIGN.md); Aceso's shared\n"
      "profiled database is built once per model family and excluded, as in\n"
      "the paper.\n");
  return 0;
}
