#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace aceso {
namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("ACESO_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  if (std::strcmp(env, "OFF") == 0) return LogLevel::kOff;
  return LogLevel::kWarning;
}

std::atomic<int>& GlobalLevel() {
  static std::atomic<int> level{static_cast<int>(ParseEnvLevel())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Trims a path down to its final component for compact log prefixes.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  GlobalLevel().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(GlobalLevel().load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), file_(file), line_(line), fatal_(fatal) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
  if (fatal_) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace aceso
