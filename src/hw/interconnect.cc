#include "src/hw/interconnect.h"

namespace aceso {

const char* CollectiveKindName(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAllReduce:
      return "all-reduce";
    case CollectiveKind::kAllGather:
      return "all-gather";
    case CollectiveKind::kReduceScatter:
      return "reduce-scatter";
    case CollectiveKind::kBroadcast:
      return "broadcast";
  }
  return "unknown";
}

double InterconnectModel::P2PTime(int64_t bytes, bool cross_node) const {
  const double bandwidth =
      cross_node ? cluster_.ib_bandwidth : cluster_.nvlink_bandwidth;
  const double latency =
      cross_node ? cluster_.ib_latency : cluster_.nvlink_latency;
  return latency + static_cast<double>(bytes) / bandwidth;
}

double InterconnectModel::RingBandwidth(const CommDomain& domain) const {
  return domain.crosses_nodes ? cluster_.ib_bandwidth
                              : cluster_.nvlink_bandwidth;
}

double InterconnectModel::RingLatency(const CommDomain& domain) const {
  return domain.crosses_nodes ? cluster_.ib_latency : cluster_.nvlink_latency;
}

double InterconnectModel::CollectiveTime(CollectiveKind kind, int64_t bytes,
                                         const CommDomain& domain) const {
  if (domain.size <= 1 || bytes <= 0) {
    return 0.0;
  }
  const double n = static_cast<double>(domain.size);
  const double bw = RingBandwidth(domain);
  const double lat = RingLatency(domain);
  const double buffer = static_cast<double>(bytes);
  switch (kind) {
    case CollectiveKind::kAllReduce:
      // reduce-scatter + all-gather: 2(n-1)/n of the buffer, 2(n-1) hops.
      return 2.0 * (n - 1.0) * lat + 2.0 * (n - 1.0) / n * buffer / bw;
    case CollectiveKind::kAllGather:
    case CollectiveKind::kReduceScatter:
      return (n - 1.0) * lat + (n - 1.0) / n * buffer / bw;
    case CollectiveKind::kBroadcast:
      // Pipelined ring broadcast approaches one buffer through the slowest
      // link.
      return (n - 1.0) * lat + buffer / bw;
  }
  return 0.0;
}

}  // namespace aceso
