// Concrete application of reconfiguration primitives to a configuration.
//
// Given a primitive kind and a target (bottleneck) stage, produces the set
// of candidate configurations that one application of the primitive can
// reach, handling:
//
//  * argument choice (§4.1): how many / which operators to move or
//    recompute, picked greedily against the performance model;
//  * partner primitives & partner stages (§3.2.1): device migrations pair an
//    inc-tp/inc-dp on the bottleneck with a dec-dp/dec-tp on a donor stage;
//  * primitive combinations (§4.3): every candidate gets a recomputation
//    fix-up pass attached, and op-count moves relay across intermediate
//    stages toward the idlest stage.
//
// Every returned candidate is structurally valid for the model/cluster.

#ifndef SRC_CORE_APPLY_H_
#define SRC_CORE_APPLY_H_

#include <string>
#include <vector>

#include "src/config/parallel_config.h"
#include "src/core/primitives.h"
#include "src/cost/perf_model.h"

namespace aceso {

// One reachable configuration plus how it was produced.
struct Candidate {
  ParallelConfig config;
  PrimitiveKind primitive;
  int stage = 0;
  std::string description;
};

// Generates all candidates for applying `kind` at `stage`. `perf` must be
// the evaluation of `config`. `attach_recompute_fix` controls the §4.3
// recompute attachment — disable it to observe a primitive's isolated
// resource impact (used by the Table-1 verification bench).
std::vector<Candidate> GeneratePrimitiveCandidates(
    const PerformanceModel& model, const ParallelConfig& config,
    const PerfResult& perf, PrimitiveKind kind, int stage,
    bool attach_recompute_fix = true);

// §4.3 recompute attachment: greedily enables recomputation (largest stored
// activation first) in `stage` until its memory fits the device, or disables
// it (most expensive recompute first) while memory allows. Mutates `config`
// in place; no-op when the stage cannot be fixed.
void FixRecompute(const PerformanceModel& model, ParallelConfig& config,
                  int stage);

// Moves `count` ops across the boundary between adjacent stages `from` and
// `to`; moved ops adopt the destination stage's (clamped) parallelism.
// Returns false (leaving `config` untouched) when the move would empty a
// stage or the stages are not adjacent.
bool MoveOps(const PerformanceModel& model, ParallelConfig& config, int from,
             int to, int count);

// Per-microbatch fwd+bwd kernel time of one op under `setting` — the greedy
// choosers' ranking key.
double EstimateOpTime(const PerformanceModel& model, const Operator& op,
                      const OpParallel& setting, int microbatch_size);

}  // namespace aceso

#endif  // SRC_CORE_APPLY_H_
