#include "src/core/frontier.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/core/search.h"
#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

constexpr int64_t kGiB = 1LL << 30;

// A synthetic offer: the archive only reads (time, MaxMemory, oom) from the
// PerfResult and treats the hash as an opaque dedup key, so unit tests can
// drive it without building real configurations.
bool Offer(FrontierArchive& archive, double iteration_time,
           int64_t peak_memory, uint64_t hash, bool oom = false,
           double cost = 0.0) {
  PerfResult perf;
  perf.oom = oom;
  perf.iteration_time = iteration_time;
  StageUsage stage;
  stage.memory_bytes = peak_memory;
  perf.stages.push_back(stage);
  return archive.Offer(ParallelConfig(), perf, hash, cost);
}

TEST(FrontierArchiveTest, KeepsOnlyNonDominatedPoints) {
  FrontierArchive archive;
  EXPECT_TRUE(Offer(archive, 4.0, 8 * kGiB, 1));
  EXPECT_TRUE(Offer(archive, 2.0, 16 * kGiB, 2));
  // Slower AND hungrier than the 16 GiB point: dominated.
  EXPECT_FALSE(Offer(archive, 3.0, 24 * kGiB, 3));
  // Faster at 24 GiB: admitted, extends the frontier.
  EXPECT_TRUE(Offer(archive, 1.0, 24 * kGiB, 4));
  // Strictly better than the 8 GiB point: admitted, evicts it.
  EXPECT_TRUE(Offer(archive, 3.5, 6 * kGiB, 5));
  ASSERT_EQ(archive.size(), 3u);
  EXPECT_EQ(archive.points()[0].semantic_hash, 5u);
  EXPECT_EQ(archive.points()[1].semantic_hash, 2u);
  EXPECT_EQ(archive.points()[2].semantic_hash, 4u);
  EXPECT_EQ(archive.stats().offered, 5);
  EXPECT_EQ(archive.stats().admitted, 4);
  EXPECT_EQ(archive.stats().dominated, 1);
  EXPECT_EQ(archive.stats().evicted, 1);
}

TEST(FrontierArchiveTest, EqualMetricsKeepTheIncumbent) {
  // First offer wins: a later point with identical metrics is dominated,
  // not swapped in — this is what makes the archive order-deterministic.
  FrontierArchive archive;
  EXPECT_TRUE(Offer(archive, 2.0, 8 * kGiB, 1));
  EXPECT_FALSE(Offer(archive, 2.0, 8 * kGiB, 2));
  ASSERT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.points()[0].semantic_hash, 1u);
}

TEST(FrontierArchiveTest, DedupesBySemanticHash) {
  FrontierArchive archive;
  EXPECT_TRUE(Offer(archive, 2.0, 8 * kGiB, 42));
  // Same config re-evaluated (even with a "better" estimate) is a duplicate:
  // one configuration gets one point.
  EXPECT_FALSE(Offer(archive, 1.0, 4 * kGiB, 42));
  EXPECT_EQ(archive.stats().duplicates, 1);
}

TEST(FrontierArchiveTest, RejectsNonFiniteAndNonPositiveEstimates) {
  FrontierArchive archive;
  EXPECT_FALSE(Offer(archive, std::numeric_limits<double>::quiet_NaN(),
                     kGiB, 1));
  EXPECT_FALSE(Offer(archive, std::numeric_limits<double>::infinity(),
                     kGiB, 2));
  EXPECT_FALSE(Offer(archive, 0.0, kGiB, 3));
  EXPECT_FALSE(Offer(archive, -1.0, kGiB, 4));
  EXPECT_TRUE(archive.empty());
  EXPECT_EQ(archive.stats().rejected, 4);
}

TEST(FrontierArchiveTest, InfeasiblePointsAreArchivedWithTheirVerdict) {
  // Points above the searched limit still answer larger budgets; the
  // feasible flag records the verdict under the limit the search ran with.
  FrontierArchive archive;
  EXPECT_TRUE(Offer(archive, 2.0, 40 * kGiB, 1, /*oom=*/true));
  ASSERT_EQ(archive.size(), 1u);
  EXPECT_FALSE(archive.points()[0].feasible);
  EXPECT_EQ(archive.BestUnderBudget(64 * kGiB)->semantic_hash, 1u);
}

TEST(FrontierArchiveTest, BestUnderBudgetMatchesBruteForce) {
  Rng rng(20240808);
  FrontierArchive archive;
  // Keep every admitted offer to brute-force against.
  std::vector<FrontierPoint> offered;
  for (uint64_t i = 0; i < 300; ++i) {
    FrontierPoint p;
    p.iteration_time = 0.5 + static_cast<double>(rng.NextBelow(1000)) / 100.0;
    p.peak_memory_bytes = static_cast<int64_t>(1 + rng.NextBelow(64)) * kGiB;
    p.semantic_hash = i + 1;
    offered.push_back(p);
    Offer(archive, p.iteration_time, p.peak_memory_bytes, p.semantic_hash);
  }
  for (int64_t budget = 0; budget <= 70 * kGiB; budget += kGiB / 2) {
    const FrontierPoint* best = archive.BestUnderBudget(budget);
    double brute = std::numeric_limits<double>::infinity();
    for (const FrontierPoint& p : offered) {
      if (p.peak_memory_bytes <= budget) {
        brute = std::min(brute, p.iteration_time);
      }
    }
    if (best == nullptr) {
      EXPECT_TRUE(std::isinf(brute)) << "budget " << budget;
    } else {
      EXPECT_EQ(best->iteration_time, brute) << "budget " << budget;
    }
  }
}

TEST(FrontierArchiveTest, RandomOfferStreamPreservesInvariants) {
  Rng rng(7);
  FrontierArchive archive;
  for (int i = 0; i < 2000; ++i) {
    Offer(archive, 0.1 + static_cast<double>(rng.NextBelow(500)) / 50.0,
          static_cast<int64_t>(1 + rng.NextBelow(48)) * (kGiB / 2),
          rng.NextU64(), rng.NextBelow(4) == 0);
    // Memory strictly ascending, time strictly descending: no archived
    // point weakly dominates another.
    const std::vector<FrontierPoint>& points = archive.points();
    for (size_t j = 1; j < points.size(); ++j) {
      ASSERT_GT(points[j].peak_memory_bytes, points[j - 1].peak_memory_bytes);
      ASSERT_LT(points[j].iteration_time, points[j - 1].iteration_time);
    }
  }
  const FrontierStats& stats = archive.stats();
  EXPECT_EQ(stats.offered, 2000);
  EXPECT_EQ(stats.offered, stats.admitted + stats.dominated +
                               stats.duplicates + stats.rejected);
  EXPECT_EQ(archive.size(),
            static_cast<size_t>(stats.admitted - stats.evicted));
}

TEST(FrontierArchiveTest, MergeIsOrderDeterministic) {
  Rng rng(99);
  FrontierArchive a;
  FrontierArchive b;
  for (int i = 0; i < 200; ++i) {
    const double time = 0.1 + static_cast<double>(rng.NextBelow(300)) / 30.0;
    const int64_t mem = static_cast<int64_t>(1 + rng.NextBelow(32)) * kGiB;
    const uint64_t hash = rng.NextU64();
    Offer(i % 2 == 0 ? a : b, time, mem, hash);
  }
  FrontierArchive merged1;
  merged1.Merge(a);
  merged1.Merge(b);
  FrontierArchive merged2;
  merged2.Merge(a);
  merged2.Merge(b);
  ASSERT_EQ(merged1.size(), merged2.size());
  for (size_t i = 0; i < merged1.size(); ++i) {
    EXPECT_EQ(merged1.points()[i].semantic_hash,
              merged2.points()[i].semantic_hash);
  }
  // The merged set is still a valid frontier.
  for (size_t i = 1; i < merged1.size(); ++i) {
    EXPECT_GT(merged1.points()[i].peak_memory_bytes,
              merged1.points()[i - 1].peak_memory_bytes);
    EXPECT_LT(merged1.points()[i].iteration_time,
              merged1.points()[i - 1].iteration_time);
  }
}

TEST(FrontierArchiveTest, CostPerStepUsdPricesTheWholeCluster) {
  // 2s/iter on 8 GPUs at $3.60/hr each: 16 GPU-seconds * $0.001/GPU-second.
  EXPECT_DOUBLE_EQ(CostPerStepUsd(2.0, 8, 3.60), 0.016);
  EXPECT_DOUBLE_EQ(CostPerStepUsd(0.0, 8, 3.60), 0.0);
}

TEST(FrontierArchiveTest, JsonRoundTripPreservesPointsAndStats) {
  FrontierArchive archive;
  Offer(archive, 4.0, 8 * kGiB, 0xdeadbeefcafe1234ull, false, 0.02);
  Offer(archive, 2.0, 16 * kGiB, 0xffffffffffffffffull, true, 0.01);
  Offer(archive, 3.0, 24 * kGiB, 7);  // dominated
  const std::string json = archive.ToJson("gpt3-0.35b");

  auto parsed = JsonParse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto restored = FrontierArchive::FromJson(*parsed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), archive.size());
  for (size_t i = 0; i < archive.size(); ++i) {
    const FrontierPoint& before = archive.points()[i];
    const FrontierPoint& after = restored->points()[i];
    EXPECT_EQ(after.iteration_time, before.iteration_time);
    EXPECT_EQ(after.peak_memory_bytes, before.peak_memory_bytes);
    EXPECT_EQ(after.cost_per_step_usd, before.cost_per_step_usd);
    EXPECT_EQ(after.semantic_hash, before.semantic_hash);
    EXPECT_EQ(after.feasible, before.feasible);
  }
  EXPECT_EQ(restored->stats().offered, archive.stats().offered);
  EXPECT_EQ(restored->stats().dominated, archive.stats().dominated);

  // Round-trip is a fixed point: serializing the restored archive yields
  // the same document.
  EXPECT_EQ(restored->ToJson("gpt3-0.35b"), json);
}

TEST(FrontierArchiveTest, FromJsonRejectsCorruptDocuments) {
  auto from = [](const std::string& text) {
    auto parsed = JsonParse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return FrontierArchive::FromJson(*parsed);
  };
  const std::string point1 =
      "{\"iteration_time\":2.0,\"peak_memory_bytes\":8,"
      "\"cost_per_step_usd\":0.1,\"semantic_hash\":\"1\",\"num_stages\":1,"
      "\"microbatch_size\":1,\"feasible\":true,\"config_text\":\"\"}";
  const std::string dominated =
      "{\"iteration_time\":3.0,\"peak_memory_bytes\":16,"
      "\"cost_per_step_usd\":0.1,\"semantic_hash\":\"2\",\"num_stages\":1,"
      "\"microbatch_size\":1,\"feasible\":true,\"config_text\":\"\"}";
  const std::string dup_hash =
      "{\"iteration_time\":1.0,\"peak_memory_bytes\":16,"
      "\"cost_per_step_usd\":0.1,\"semantic_hash\":\"1\",\"num_stages\":1,"
      "\"microbatch_size\":1,\"feasible\":true,\"config_text\":\"\"}";

  EXPECT_FALSE(from("[]").ok());
  EXPECT_FALSE(from("{}").ok()) << "missing points array";
  EXPECT_TRUE(from("{\"points\":[]}").ok());
  EXPECT_TRUE(from("{\"points\":[" + point1 + "]}").ok());
  // Unsorted / dominated points: the Pareto invariant is enforced.
  EXPECT_FALSE(from("{\"points\":[" + point1 + "," + dominated + "]}").ok());
  EXPECT_FALSE(from("{\"points\":[" + point1 + "," + dup_hash + "]}").ok());
  // Bad counters.
  EXPECT_FALSE(from("{\"points\":[],\"offered\":-1}").ok());
  EXPECT_FALSE(from("{\"points\":[],\"offered\":1.5}").ok());
  // Bad point payloads.
  EXPECT_FALSE(from("{\"points\":[{\"iteration_time\":-2.0}]}").ok());
  EXPECT_FALSE(from("{\"points\":[{}]}").ok());
}

// ---- search integration ----

class FrontierSearchTest : public ::testing::Test {
 protected:
  FrontierSearchTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(4)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  SearchOptions FrontierOptions() {
    SearchOptions options;
    options.time_budget_seconds = 1e9;  // evaluation-budget limited
    options.max_evaluations = 60;
    options.max_hops = 5;
    options.track_frontier = true;
    return options;
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(FrontierSearchTest, DisabledByDefaultAndCostsNothing) {
  SearchOptions options = FrontierOptions();
  options.track_frontier = false;
  const SearchResult result = AcesoSearch(model_, options);
  EXPECT_TRUE(result.frontier.empty());
  EXPECT_EQ(result.stats.frontier_offered, 0);
  EXPECT_EQ(result.stats.frontier_admitted, 0);
}

TEST_F(FrontierSearchTest, ArchivesAValidFrontierFromTheWalk) {
  const SearchResult result = AcesoSearch(model_, FrontierOptions());
  ASSERT_TRUE(result.found);
  ASSERT_FALSE(result.frontier.empty());
  EXPECT_GT(result.stats.frontier_offered, 0);
  const std::vector<FrontierPoint>& points = result.frontier.points();
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].peak_memory_bytes, points[i - 1].peak_memory_bytes);
    EXPECT_LT(points[i].iteration_time, points[i - 1].iteration_time);
  }
  // The search's own best is answerable from the archive: at device
  // capacity the frontier's pick is at least as fast as the returned best.
  const FrontierPoint* best =
      result.frontier.BestUnderBudget(cluster_.gpu.memory_bytes);
  ASSERT_NE(best, nullptr);
  EXPECT_LE(best->iteration_time, result.best.perf.iteration_time);
}

TEST_F(FrontierSearchTest, FrontierIsBitIdenticalAcrossEvalThreads) {
  // The DESIGN.md §11 determinism contract extends to the archive: offers
  // happen only on the search's serial spine, so eval_threads changes how
  // fast the frontier is built, never its contents.
  auto run = [&](int eval_threads) {
    SearchOptions options = FrontierOptions();
    options.eval_threads = eval_threads;
    return AcesoSearch(model_, options);
  };
  const SearchResult golden = run(1);
  ASSERT_FALSE(golden.frontier.empty());
  for (const int threads : {2, 8}) {
    const SearchResult result = run(threads);
    ASSERT_EQ(result.frontier.size(), golden.frontier.size())
        << "eval_threads=" << threads;
    for (size_t i = 0; i < golden.frontier.size(); ++i) {
      const FrontierPoint& g = golden.frontier.points()[i];
      const FrontierPoint& p = result.frontier.points()[i];
      EXPECT_EQ(p.semantic_hash, g.semantic_hash) << "point " << i;
      EXPECT_EQ(p.iteration_time, g.iteration_time) << "point " << i;
      EXPECT_EQ(p.peak_memory_bytes, g.peak_memory_bytes) << "point " << i;
      EXPECT_EQ(p.feasible, g.feasible) << "point " << i;
    }
    EXPECT_EQ(result.stats.frontier_offered, golden.stats.frontier_offered);
  }
}

TEST_F(FrontierSearchTest, ArchivedConfigsSerializeAndRoundTrip) {
  const SearchResult result = AcesoSearch(model_, FrontierOptions());
  ASSERT_FALSE(result.frontier.empty());
  const std::string json = result.frontier.ToJson("gpt3-0.35b");
  auto parsed = JsonParse(json);
  ASSERT_TRUE(parsed.ok());
  auto restored = FrontierArchive::FromJson(*parsed);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->size(), result.frontier.size());
  // Every archived point carried a lowerable config text.
  for (const FrontierPoint& p : restored->points()) {
    EXPECT_FALSE(p.config_text.empty());
  }
}

}  // namespace
}  // namespace aceso
