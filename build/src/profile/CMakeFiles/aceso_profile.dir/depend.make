# Empty dependencies file for aceso_profile.
# This may be replaced when dependencies are built.
