// aceso_bench_search: search-throughput benchmark runner for CI.
//
//   aceso_bench_search [--out BENCH_search.json] [--budget SECONDS]
//                      [--quick] [--batch-eval on|off]
//
// Measures the candidate-generation hot path (DESIGN.md §9) and fixed-budget
// search throughput, and writes the results as a flat JSON report:
//
//   - per-candidate construction+hash cost, copy-on-write vs the deep-copy
//     baseline (ns/candidate, speedup);
//   - configs explored per second and stage-cost-cache hit rate (DESIGN.md
//     §8, the exp11 metric) for the reference search settings.
//
// The JSON is hand-emitted (the repository carries no JSON dependency); CI
// uploads it as the BENCH_search artifact so runs can be compared over time.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/aceso.h"
#include "tools/cli_flags.h"

namespace aceso {
namespace {

struct Args {
  std::string out = "BENCH_search.json";
  double budget = 2.0;   // per search setting, seconds
  bool quick = false;    // CI smoke mode: shorter budgets, fewer reps
  // Default for the search runs; the batch_eval sweep section always
  // measures both settings so the off/on comparison is in the report.
  bool batch_eval = true;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--budget") {
      if (!cli::ParsePositiveDouble("--budget", next(), &args.budget)) {
        return false;
      }
    } else if (flag == "--quick") {
      args.quick = true;
    } else if (flag == "--batch-eval") {
      int choice = 0;
      if (!cli::ParseChoice("--batch-eval", next(), {"on", "off"}, &choice)) {
        return false;
      }
      args.batch_eval = choice == 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ----- Candidate-generation cost (micro_search's hot-path kernel) -----

// One dedup-bound candidate: copy the base config, flip one op's recompute
// flag in one stage, re-hash. kDeepCopy reproduces the pre-§9
// representation (full copy + from-scratch hash).
template <bool kDeepCopy>
uint64_t MakeCandidate(const ParallelConfig& base, const OpGraph& graph,
                       int round) {
  ParallelConfig next = kDeepCopy ? base.DeepCopy() : base;
  const int s = round % next.num_stages();
  StageConfig& stage = next.MutableStage(s);
  OpParallel& setting =
      stage.ops[static_cast<size_t>(round) % stage.ops.size()];
  setting.recompute = !setting.recompute;
  return kDeepCopy ? next.SemanticHashUncached(graph)
                   : next.SemanticHash(graph);
}

template <bool kDeepCopy>
double MeasureCandidateNs(const ParallelConfig& base, const OpGraph& graph,
                          int rounds) {
  uint64_t sink = 0;
  const double start = NowSeconds();
  for (int round = 0; round < rounds; ++round) {
    sink ^= MakeCandidate<kDeepCopy>(base, graph, round);
  }
  const double elapsed = NowSeconds() - start;
  // Keep the fold alive without letting the compiler see through it.
  if (sink == 0x5eedf00dULL) std::fprintf(stderr, "\n");
  return 1e9 * elapsed / rounds;
}

struct CandidateReport {
  double cow_ns = 0.0;
  double deep_ns = 0.0;
  double speedup = 0.0;
};

CandidateReport BenchCandidateGeneration(bool quick) {
  const OpGraph graph = models::Gpt3(2.6);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(16);
  ParallelConfig base = *MakeEvenConfig(graph, cluster, 8, 4);
  base.SemanticHash(graph);  // warm caches, as the search's base config is
  const int rounds = quick ? 20000 : 200000;
  // One warmup pass each, then the measured pass.
  MeasureCandidateNs<false>(base, graph, rounds / 10);
  MeasureCandidateNs<true>(base, graph, rounds / 10);
  CandidateReport report;
  report.cow_ns = MeasureCandidateNs<false>(base, graph, rounds);
  report.deep_ns = MeasureCandidateNs<true>(base, graph, rounds);
  report.speedup = report.deep_ns / report.cow_ns;
  return report;
}

// ----- Fixed-budget search throughput + cache hit rate -----

struct SearchReport {
  std::string setting;
  int64_t configs_explored = 0;
  double seconds = 0.0;
  double configs_per_sec = 0.0;
  double cache_hit_rate = 0.0;
  double best_iteration_time = 0.0;
  uint64_t semantic_hash = 0;
  // Telemetry counters for the run (search.* names minus the prefix).
  std::map<std::string, int64_t> counters;
};

SearchReport BenchSearch(const std::string& model_name, int gpus, int stages,
                         double budget, bool batch_eval) {
  SearchReport report;
  report.setting = model_name + "@" + std::to_string(gpus) + "gpu";
  auto graph = models::BuildByName(model_name);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return report;
  }
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(gpus);
  ProfileDatabase db(cluster);
  PerformanceModel model(&*graph, cluster, &db);
  // Ring-only sink: the report folds in the counters registry, not events.
  TelemetryOptions topts;
  topts.ring_capacity = 0;
  TelemetrySink telemetry(topts);
  SearchOptions options;
  options.time_budget_seconds = budget;
  options.batch_eval = batch_eval;
  options.telemetry = &telemetry;
  const SearchResult result = AcesoSearchForStages(model, options, stages);
  for (const auto& [name, value] : telemetry.Counters()) {
    constexpr std::string_view kPrefix = "search.";
    const std::string_view view = name;
    report.counters[std::string(view.substr(
        view.rfind(kPrefix, 0) == 0 ? kPrefix.size() : 0))] = value;
  }
  report.configs_explored = result.stats.configs_explored;
  report.seconds = result.search_seconds;
  report.configs_per_sec =
      result.search_seconds > 0
          ? static_cast<double>(result.stats.configs_explored) /
                result.search_seconds
          : 0.0;
  const int64_t lookups =
      result.stats.cache_hits + result.stats.cache_misses;
  report.cache_hit_rate =
      lookups > 0 ? static_cast<double>(result.stats.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  if (result.found) {
    report.best_iteration_time = result.best.perf.iteration_time;
    report.semantic_hash = result.best.semantic_hash;
  }
  return report;
}

// ----- Intra-search evaluation-parallelism sweep (DESIGN.md §11) -----

// One sweep point: the same deterministic search (fixed evaluation budget)
// at one eval_threads setting. Every point must land on the serial point's
// exact best configuration — the sweep doubles as a release check of the
// bit-identical-trajectory contract.
struct EvalSweepPoint {
  int eval_threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;  // serial seconds / this point's seconds
  int64_t configs_explored = 0;
  uint64_t semantic_hash = 0;
  bool matches_serial = true;
  // Pool + batching counters for the run.
  int64_t eval_batches = 0;
  int64_t eval_batch_candidates = 0;
  int64_t batch_batches = 0;
  int64_t batch_lanes = 0;
  int64_t batch_shared_saved = 0;
  int64_t pool_tasks = 0;
  int64_t pool_steals = 0;
  int64_t pool_helped = 0;
  int64_t profile_db_contended = 0;
};

struct EvalSweepReport {
  std::string model = "gpt3-1.3b";
  int gpus = 8;
  int stages = 2;
  int64_t max_evaluations = 0;
  std::vector<EvalSweepPoint> points;
};

EvalSweepReport BenchEvalParallelism(bool quick, bool batch_eval) {
  EvalSweepReport report;
  report.max_evaluations = quick ? 1000 : 4000;
  auto graph = models::BuildByName(report.model);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return report;
  }
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(report.gpus);
  for (const int eval_threads : {1, 2, 4, 8}) {
    // Fresh database + model per point: each run pays the same cold-cache
    // profiling cost, so the timing comparison is like-for-like.
    ProfileDatabase db(cluster);
    PerformanceModel model(&*graph, cluster, &db);
    TelemetryOptions topts;
    topts.ring_capacity = 0;
    TelemetrySink telemetry(topts);
    SearchOptions options;
    options.time_budget_seconds = 1e9;  // the evaluation budget binds
    options.max_evaluations = report.max_evaluations;
    options.eval_threads = eval_threads;
    options.batch_eval = batch_eval;
    options.telemetry = &telemetry;
    ThreadPool pool(static_cast<size_t>(eval_threads));
    if (eval_threads > 1) {
      options.eval_pool = &pool;
    }
    const double start = NowSeconds();
    const SearchResult result =
        AcesoSearchForStages(model, options, report.stages);
    EvalSweepPoint point;
    point.eval_threads = eval_threads;
    point.seconds = NowSeconds() - start;
    point.configs_explored = result.stats.configs_explored;
    point.semantic_hash = result.found ? result.best.semantic_hash : 0;
    const auto& counters = telemetry.Counters();
    auto counter = [&counters](const char* name) -> int64_t {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    };
    point.eval_batches = counter("search.eval_batches");
    point.eval_batch_candidates = counter("search.eval_batch_candidates");
    point.batch_batches = counter("search.batch_batches");
    point.batch_lanes = counter("search.batch_lanes");
    point.batch_shared_saved = counter("search.batch_shared_saved");
    const ThreadPoolStats pool_stats = pool.stats();
    point.pool_tasks = pool_stats.executed;
    point.pool_steals = pool_stats.stolen;
    point.pool_helped = pool_stats.helped;
    point.profile_db_contended = db.stats().lock_contended;
    if (!report.points.empty()) {
      const EvalSweepPoint& serial = report.points.front();
      point.speedup =
          point.seconds > 0 ? serial.seconds / point.seconds : 0.0;
      point.matches_serial =
          point.semantic_hash == serial.semantic_hash &&
          point.configs_explored == serial.configs_explored;
    }
    report.points.push_back(point);
  }
  return report;
}

// ----- Batched group evaluation sweep (DESIGN.md §13) -----

// The same deterministic fixed-budget search with batched candidate-group
// evaluation off, then on. The trajectories must match exactly — the sweep
// is a release check of the batched≡scalar contract — and the on point
// carries the SoA sharing counters so regressions in the broadcast rate
// (shared-stage lookups saved per lane) are visible in the report.
struct BatchSweepPoint {
  bool batch_eval = false;
  double seconds = 0.0;
  double speedup = 1.0;  // scalar seconds / this point's seconds
  int64_t configs_explored = 0;
  uint64_t semantic_hash = 0;
  bool matches_scalar = true;
  int64_t batch_batches = 0;
  int64_t batch_lanes = 0;
  int64_t batch_stage_groups = 0;
  int64_t batch_shared_saved = 0;
};

struct BatchSweepReport {
  std::string model = "gpt3-1.3b";
  int gpus = 8;
  int stages = 2;
  int64_t max_evaluations = 0;
  std::vector<BatchSweepPoint> points;
};

BatchSweepReport BenchBatchEval(bool quick) {
  BatchSweepReport report;
  report.max_evaluations = quick ? 1000 : 4000;
  auto graph = models::BuildByName(report.model);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return report;
  }
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(report.gpus);
  for (const bool batch_eval : {false, true}) {
    ProfileDatabase db(cluster);
    PerformanceModel model(&*graph, cluster, &db);
    TelemetryOptions topts;
    topts.ring_capacity = 0;
    TelemetrySink telemetry(topts);
    SearchOptions options;
    options.time_budget_seconds = 1e9;  // the evaluation budget binds
    options.max_evaluations = report.max_evaluations;
    options.batch_eval = batch_eval;
    options.telemetry = &telemetry;
    const double start = NowSeconds();
    const SearchResult result =
        AcesoSearchForStages(model, options, report.stages);
    BatchSweepPoint point;
    point.batch_eval = batch_eval;
    point.seconds = NowSeconds() - start;
    point.configs_explored = result.stats.configs_explored;
    point.semantic_hash = result.found ? result.best.semantic_hash : 0;
    const auto& counters = telemetry.Counters();
    auto counter = [&counters](const char* name) -> int64_t {
      const auto it = counters.find(name);
      return it == counters.end() ? 0 : it->second;
    };
    point.batch_batches = counter("search.batch_batches");
    point.batch_lanes = counter("search.batch_lanes");
    point.batch_stage_groups = counter("search.batch_stage_groups");
    point.batch_shared_saved = counter("search.batch_shared_saved");
    if (!report.points.empty()) {
      const BatchSweepPoint& scalar = report.points.front();
      point.speedup =
          point.seconds > 0 ? scalar.seconds / point.seconds : 0.0;
      point.matches_scalar =
          point.semantic_hash == scalar.semantic_hash &&
          point.configs_explored == scalar.configs_explored;
    }
    report.points.push_back(point);
  }
  return report;
}

void WriteJson(const Args& args, const CandidateReport& cand,
               const std::vector<SearchReport>& searches,
               const EvalSweepReport& sweep, const BatchSweepReport& batch) {
  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"budget_seconds\": %.3f,\n", args.budget);
  std::fprintf(f, "  \"quick\": %s,\n", args.quick ? "true" : "false");
  std::fprintf(f, "  \"candidate_generation\": {\n");
  std::fprintf(f, "    \"model\": \"gpt3-2.6b\",\n");
  std::fprintf(f, "    \"gpus\": 16,\n");
  std::fprintf(f, "    \"stages\": 8,\n");
  std::fprintf(f, "    \"cow_ns_per_candidate\": %.1f,\n", cand.cow_ns);
  std::fprintf(f, "    \"deep_copy_ns_per_candidate\": %.1f,\n",
               cand.deep_ns);
  std::fprintf(f, "    \"speedup\": %.2f\n", cand.speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"searches\": [\n");
  for (size_t i = 0; i < searches.size(); ++i) {
    const SearchReport& s = searches[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"setting\": \"%s\",\n", s.setting.c_str());
    std::fprintf(f, "      \"configs_explored\": %lld,\n",
                 static_cast<long long>(s.configs_explored));
    std::fprintf(f, "      \"seconds\": %.3f,\n", s.seconds);
    std::fprintf(f, "      \"configs_explored_per_sec\": %.1f,\n",
                 s.configs_per_sec);
    std::fprintf(f, "      \"stage_cache_hit_rate\": %.4f,\n",
                 s.cache_hit_rate);
    std::fprintf(f, "      \"best_iteration_time\": %.6f,\n",
                 s.best_iteration_time);
    std::fprintf(f, "      \"semantic_hash\": \"%llu\",\n",
                 static_cast<unsigned long long>(s.semantic_hash));
    std::fprintf(f, "      \"counters\": {");
    bool first = true;
    for (const auto& [name, value] : s.counters) {
      std::fprintf(f, "%s\n        \"%s\": %lld", first ? "" : ",",
                   JsonEscape(name).c_str(), static_cast<long long>(value));
      first = false;
    }
    std::fprintf(f, "\n      }\n");
    std::fprintf(f, "    }%s\n", i + 1 < searches.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"eval_parallelism\": {\n");
  std::fprintf(f, "    \"model\": \"%s\",\n", sweep.model.c_str());
  std::fprintf(f, "    \"gpus\": %d,\n", sweep.gpus);
  std::fprintf(f, "    \"stages\": %d,\n", sweep.stages);
  std::fprintf(f, "    \"max_evaluations\": %lld,\n",
               static_cast<long long>(sweep.max_evaluations));
  std::fprintf(f, "    \"points\": [\n");
  for (size_t i = 0; i < sweep.points.size(); ++i) {
    const EvalSweepPoint& p = sweep.points[i];
    std::fprintf(f, "      {\n");
    std::fprintf(f, "        \"eval_threads\": %d,\n", p.eval_threads);
    std::fprintf(f, "        \"seconds\": %.3f,\n", p.seconds);
    std::fprintf(f, "        \"speedup\": %.2f,\n", p.speedup);
    std::fprintf(f, "        \"configs_explored\": %lld,\n",
                 static_cast<long long>(p.configs_explored));
    std::fprintf(f, "        \"semantic_hash\": \"%llu\",\n",
                 static_cast<unsigned long long>(p.semantic_hash));
    std::fprintf(f, "        \"matches_serial\": %s,\n",
                 p.matches_serial ? "true" : "false");
    std::fprintf(f, "        \"eval_batches\": %lld,\n",
                 static_cast<long long>(p.eval_batches));
    std::fprintf(f, "        \"eval_batch_candidates\": %lld,\n",
                 static_cast<long long>(p.eval_batch_candidates));
    std::fprintf(f, "        \"batch_batches\": %lld,\n",
                 static_cast<long long>(p.batch_batches));
    std::fprintf(f, "        \"batch_lanes\": %lld,\n",
                 static_cast<long long>(p.batch_lanes));
    std::fprintf(f, "        \"batch_shared_saved\": %lld,\n",
                 static_cast<long long>(p.batch_shared_saved));
    std::fprintf(f, "        \"pool_tasks\": %lld,\n",
                 static_cast<long long>(p.pool_tasks));
    std::fprintf(f, "        \"pool_steals\": %lld,\n",
                 static_cast<long long>(p.pool_steals));
    std::fprintf(f, "        \"pool_helped\": %lld,\n",
                 static_cast<long long>(p.pool_helped));
    std::fprintf(f, "        \"profile_db_lock_contended\": %lld\n",
                 static_cast<long long>(p.profile_db_contended));
    std::fprintf(f, "      }%s\n", i + 1 < sweep.points.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"batch_eval\": {\n");
  std::fprintf(f, "    \"model\": \"%s\",\n", batch.model.c_str());
  std::fprintf(f, "    \"gpus\": %d,\n", batch.gpus);
  std::fprintf(f, "    \"stages\": %d,\n", batch.stages);
  std::fprintf(f, "    \"max_evaluations\": %lld,\n",
               static_cast<long long>(batch.max_evaluations));
  std::fprintf(f, "    \"points\": [\n");
  for (size_t i = 0; i < batch.points.size(); ++i) {
    const BatchSweepPoint& p = batch.points[i];
    std::fprintf(f, "      {\n");
    std::fprintf(f, "        \"batch_eval\": %s,\n",
                 p.batch_eval ? "true" : "false");
    std::fprintf(f, "        \"seconds\": %.3f,\n", p.seconds);
    std::fprintf(f, "        \"speedup\": %.2f,\n", p.speedup);
    std::fprintf(f, "        \"configs_explored\": %lld,\n",
                 static_cast<long long>(p.configs_explored));
    std::fprintf(f, "        \"semantic_hash\": \"%llu\",\n",
                 static_cast<unsigned long long>(p.semantic_hash));
    std::fprintf(f, "        \"matches_scalar\": %s,\n",
                 p.matches_scalar ? "true" : "false");
    std::fprintf(f, "        \"batch_batches\": %lld,\n",
                 static_cast<long long>(p.batch_batches));
    std::fprintf(f, "        \"batch_lanes\": %lld,\n",
                 static_cast<long long>(p.batch_lanes));
    std::fprintf(f, "        \"batch_stage_groups\": %lld,\n",
                 static_cast<long long>(p.batch_stage_groups));
    std::fprintf(f, "        \"batch_shared_saved\": %lld\n",
                 static_cast<long long>(p.batch_shared_saved));
    std::fprintf(f, "      }%s\n", i + 1 < batch.points.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--out FILE] [--budget SECONDS] [--quick] "
                 "[--batch-eval on|off]\n",
                 argv[0]);
    return 2;
  }
  if (args.quick) args.budget = std::min(args.budget, 0.5);

  std::printf("candidate generation (gpt3-2.6b @16gpu, 8 stages)...\n");
  const CandidateReport cand = BenchCandidateGeneration(args.quick);
  std::printf("  CoW %.0f ns, deep copy %.0f ns, speedup %.2fx\n",
              cand.cow_ns, cand.deep_ns, cand.speedup);

  std::vector<SearchReport> searches;
  searches.push_back(
      BenchSearch("gpt3-2.6b", 8, 2, args.budget, args.batch_eval));
  if (!args.quick) {
    searches.push_back(
        BenchSearch("wresnet-2b", 4, 2, args.budget, args.batch_eval));
  }
  for (const SearchReport& s : searches) {
    std::printf(
        "  %s: %lld configs in %.2fs (%.0f/s), cache hit %.1f%%\n",
        s.setting.c_str(), static_cast<long long>(s.configs_explored),
        s.seconds, s.configs_per_sec, 100.0 * s.cache_hit_rate);
  }

  std::printf("eval-parallelism sweep (gpt3-1.3b @8gpu, 2 stages)...\n");
  const EvalSweepReport sweep = BenchEvalParallelism(args.quick, args.batch_eval);
  for (const EvalSweepPoint& p : sweep.points) {
    std::printf(
        "  eval_threads=%d: %.2fs (%.2fx), %lld batches, %lld steals%s\n",
        p.eval_threads, p.seconds, p.speedup,
        static_cast<long long>(p.eval_batches),
        static_cast<long long>(p.pool_steals),
        p.matches_serial ? "" : "  ** TRAJECTORY MISMATCH **");
  }

  std::printf("batch-eval sweep (gpt3-1.3b @8gpu, 2 stages)...\n");
  const BatchSweepReport batch = BenchBatchEval(args.quick);
  for (const BatchSweepPoint& p : batch.points) {
    std::printf(
        "  batch_eval=%s: %.2fs (%.2fx), %lld lanes, %lld lookups saved%s\n",
        p.batch_eval ? "on" : "off", p.seconds, p.speedup,
        static_cast<long long>(p.batch_lanes),
        static_cast<long long>(p.batch_shared_saved),
        p.matches_scalar ? "" : "  ** TRAJECTORY MISMATCH **");
  }

  WriteJson(args, cand, searches, sweep, batch);
  std::printf("wrote %s\n", args.out.c_str());
  return 0;
}

}  // namespace
}  // namespace aceso

int main(int argc, char** argv) { return aceso::Main(argc, argv); }
