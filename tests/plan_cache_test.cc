#include "src/serve/plan_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/ir/models/model_zoo.h"
#include "src/serve/plan_protocol.h"

namespace aceso {
namespace serve {
namespace {

CachedPlan Plan(const std::string& payload) {
  CachedPlan plan;
  plan.payload_json = std::make_shared<const std::string>(payload);
  plan.found = true;
  return plan;
}

TEST(PlanCacheTest, GetReturnsWhatPutStored) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, Plan("one"));
  auto hit = cache.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->payload_json, "one");
  EXPECT_TRUE(hit->found);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Put(1, Plan("one"));
  cache.Put(2, Plan("two"));
  // Touch 1 so 2 becomes the LRU entry, then overflow.
  EXPECT_TRUE(cache.Get(1).has_value());
  cache.Put(3, Plan("three"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(PlanCacheTest, PutRefreshesExistingEntry) {
  PlanCache cache(2);
  cache.Put(1, Plan("one"));
  cache.Put(2, Plan("two"));
  cache.Put(1, Plan("one again"));  // refresh, not insert: 2 is now LRU
  cache.Put(3, Plan("three"));
  EXPECT_EQ(*cache.Get(1)->payload_json, "one again");
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.stats().inserts, 3);
}

TEST(PlanCacheTest, DerivedPayloadsRoundTripAndAreScopedToTheEntry) {
  PlanCache cache(4);
  cache.Put(1, Plan("base"));
  EXPECT_EQ(cache.GetDerived(1, 42), nullptr);  // present entry, no variant
  auto sweep = std::make_shared<const std::string>("sweep for budgets A");
  cache.PutDerived(1, 42, sweep);
  auto hit = cache.GetDerived(1, 42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), sweep.get()) << "shared by reference, not copied";
  EXPECT_EQ(cache.GetDerived(1, 43), nullptr);  // other variant
  EXPECT_EQ(cache.GetDerived(2, 42), nullptr);  // absent entry: not a miss
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.derived_hits, 1);
  EXPECT_EQ(stats.derived_misses, 2);
  EXPECT_EQ(stats.derived_inserts, 1);
}

TEST(PlanCacheTest, RefreshingAnEntryDropsItsDerivedPayloads) {
  // Derived payloads are renderings of the entry's payload; replacing the
  // payload must invalidate them or a sweep could replay stale data.
  PlanCache cache(4);
  cache.Put(1, Plan("v1"));
  cache.PutDerived(1, 7, std::make_shared<const std::string>("from v1"));
  cache.Put(1, Plan("v2"));
  EXPECT_EQ(cache.GetDerived(1, 7), nullptr);
}

TEST(PlanCacheTest, DerivedPayloadsAreCappedPerEntry) {
  PlanCache cache(PlanCacheOptions{.capacity = 4, .max_derived_payloads = 3});
  cache.Put(1, Plan("base"));
  for (uint64_t v = 0; v < 3 + 3; ++v) {
    cache.PutDerived(
        1, v, std::make_shared<const std::string>("d" + std::to_string(v)));
  }
  // Oldest variants were dropped (and counted); the newest 3 survive.
  EXPECT_EQ(cache.GetDerived(1, 0), nullptr);
  EXPECT_EQ(cache.GetDerived(1, 2), nullptr);
  ASSERT_NE(cache.GetDerived(1, 3), nullptr);
  ASSERT_NE(cache.GetDerived(1, 5), nullptr);
  EXPECT_EQ(cache.stats().derived_evictions, 3);
}

TEST(PlanCacheTest, ZeroDerivedCapKeepsNoVariants) {
  PlanCache cache(PlanCacheOptions{.capacity = 4, .max_derived_payloads = 0});
  cache.Put(1, Plan("base"));
  cache.PutDerived(1, 7, std::make_shared<const std::string>("variant"));
  EXPECT_EQ(cache.GetDerived(1, 7), nullptr);
  EXPECT_EQ(cache.stats().derived_inserts, 0);
}

TEST(PlanCacheTest, PutDerivedOnMissingEntryIsANoOp) {
  PlanCache cache(2);
  cache.PutDerived(99, 1, std::make_shared<const std::string>("orphan"));
  EXPECT_EQ(cache.GetDerived(99, 1), nullptr);
  EXPECT_EQ(cache.stats().derived_inserts, 0);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.Put(1, Plan("one"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.stats().inserts, 0);
}

// ---- similarity index (DESIGN.md §17) ----

NeighborPlan Neighbor(int num_ops, int num_gpus,
                      int64_t memory_budget_bytes = 0) {
  NeighborPlan plan;
  plan.config = std::make_shared<const ParallelConfig>();
  plan.num_ops = num_ops;
  plan.num_gpus = num_gpus;
  plan.memory_budget_bytes = memory_budget_bytes;
  return plan;
}

TEST(PlanCacheTest, FindNeighborPicksTheNearestRegisteredPlan) {
  PlanCache cache(8);
  cache.Put(1, Plan("24 layers"));
  cache.Put(2, Plan("48 layers"));
  constexpr uint64_t kFamily = 0xF00D;
  cache.AttachNeighbor(1, kFamily, Neighbor(/*num_ops=*/24, /*num_gpus=*/8));
  cache.AttachNeighbor(2, kFamily, Neighbor(/*num_ops=*/48, /*num_gpus=*/8));

  // A 28-op request is closer to 24 than to 48.
  auto hit = cache.FindNeighbor(kFamily, /*exclude_key=*/99, /*num_ops=*/28,
                                /*num_gpus=*/8, /*memory_budget_bytes=*/0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->num_ops, 24);

  // A 44-op request flips to the other plan.
  hit = cache.FindNeighbor(kFamily, 99, 44, 8, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->num_ops, 48);

  // A different family bucket is empty.
  EXPECT_FALSE(cache.FindNeighbor(kFamily + 1, 99, 28, 8, 0).has_value());

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.neighbor_probes, 3);
  EXPECT_EQ(stats.neighbor_hits, 2);
}

TEST(PlanCacheTest, FindNeighborSkipsTheExcludedKey) {
  // The only registered plan is the request's own entry: the probe must not
  // hand a search its own prior answer as a "neighbor".
  PlanCache cache(8);
  cache.Put(1, Plan("self"));
  constexpr uint64_t kFamily = 7;
  cache.AttachNeighbor(1, kFamily, Neighbor(24, 8));
  EXPECT_FALSE(cache.FindNeighbor(kFamily, /*exclude_key=*/1, 24, 8, 0)
                   .has_value());
  EXPECT_TRUE(cache.FindNeighbor(kFamily, /*exclude_key=*/2, 24, 8, 0)
                  .has_value());
}

TEST(PlanCacheTest, ExplicitBudgetsPreferBudgetedNeighbors) {
  // 0 means "device capacity": capacity-to-capacity is a perfect budget
  // match, capacity-to-explicit takes the full penalty — the plans were
  // verdicted under different limits.
  PlanCache cache(8);
  cache.Put(1, Plan("capacity"));
  cache.Put(2, Plan("16GiB"));
  constexpr uint64_t kFamily = 7;
  constexpr int64_t kGiB = 1LL << 30;
  cache.AttachNeighbor(1, kFamily, Neighbor(24, 8, 0));
  cache.AttachNeighbor(2, kFamily, Neighbor(24, 8, 16 * kGiB));

  auto hit = cache.FindNeighbor(kFamily, 99, 24, 8, /*budget=*/0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->memory_budget_bytes, 0);

  hit = cache.FindNeighbor(kFamily, 99, 24, 8, /*budget=*/14 * kGiB);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->memory_budget_bytes, 16 * kGiB);
}

TEST(PlanCacheTest, EvictionUnhooksTheNeighborRegistration) {
  PlanCache cache(2);
  cache.Put(1, Plan("one"));
  constexpr uint64_t kFamily = 7;
  cache.AttachNeighbor(1, kFamily, Neighbor(24, 8));
  ASSERT_TRUE(cache.FindNeighbor(kFamily, 99, 24, 8, 0).has_value());
  // Overflow the LRU so entry 1 (least recent) is evicted.
  cache.Put(2, Plan("two"));
  cache.Put(3, Plan("three"));
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.FindNeighbor(kFamily, 99, 24, 8, 0).has_value())
      << "a neighbor plan must not outlive its exact entry";
}

TEST(PlanCacheTest, RefreshDropsTheNeighborRegistration) {
  // Refreshing replaces the payload; the registered plan was the old
  // payload's and must go with it (the runner re-attaches after the new
  // search).
  PlanCache cache(4);
  cache.Put(1, Plan("v1"));
  constexpr uint64_t kFamily = 7;
  cache.AttachNeighbor(1, kFamily, Neighbor(24, 8));
  cache.Put(1, Plan("v2"));
  EXPECT_FALSE(cache.FindNeighbor(kFamily, 99, 24, 8, 0).has_value());
}

TEST(PlanCacheTest, AttachNeighborToMissingEntryIsANoOp) {
  PlanCache cache(2);
  cache.AttachNeighbor(99, /*family=*/7, Neighbor(24, 8));
  EXPECT_FALSE(cache.FindNeighbor(7, 0, 24, 8, 0).has_value());
}

// ---- keying: PlanCacheKey over the parsed request ----

class PlanCacheKeyTest : public ::testing::Test {
 protected:
  // The key a request denotes, end to end: build the model, derive the
  // cluster and options exactly like the service does.
  static uint64_t KeyOf(const PlanRequest& request) {
    auto graph = models::BuildByName(request.model);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    const ClusterSpec cluster = ClusterSpec::WithGpuCount(request.gpus);
    return PlanCacheKey(*graph, cluster,
                        ToSearchOptions(request, /*default_eval_threads=*/2));
  }

  static PlanRequest BaseRequest() {
    PlanRequest request;
    request.model = "gpt3-0.35b";
    request.gpus = 4;
    request.max_evaluations = 50;
    return request;
  }
};

TEST_F(PlanCacheKeyTest, NonSemanticFieldsDoNotChangeTheKey) {
  const uint64_t base = KeyOf(BaseRequest());

  PlanRequest request = BaseRequest();
  request.request_id = "r-123";
  request.client = "curl";
  request.stream = true;
  request.eval_threads = 7;
  EXPECT_EQ(KeyOf(request), base)
      << "execution-shaping fields must not fragment the cache";
}

TEST_F(PlanCacheKeyTest, SemanticFieldsChangeTheKey) {
  const uint64_t base = KeyOf(BaseRequest());

  PlanRequest request = BaseRequest();
  request.model = "gpt3-1.3b";
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.gpus = 8;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.seed = 7;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.budget_seconds = 9.5;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.max_evaluations = 51;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.max_hops = 3;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.stages = 2;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.seed_mode = SeedMode::kDp;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.top_k = 2;
  EXPECT_NE(KeyOf(request), base);
}

TEST_F(PlanCacheKeyTest, FrontierAndBudgetFieldsKeySeparately) {
  // ISSUE-8 regression: `frontier` and `memory_budget_bytes` are semantic —
  // the first adds a member to the answer, the second changes every
  // feasibility verdict — so requests differing only in them must never
  // collide (a collision replays a payload computed under the wrong limit,
  // or one with no frontier to derive a sweep from).
  const uint64_t base = KeyOf(BaseRequest());

  PlanRequest request = BaseRequest();
  request.frontier = true;
  const uint64_t frontier_key = KeyOf(request);
  EXPECT_NE(frontier_key, base);

  request = BaseRequest();
  request.memory_budget_bytes = 16LL * (1LL << 30);
  const uint64_t budget16 = KeyOf(request);
  EXPECT_NE(budget16, base);
  EXPECT_NE(budget16, frontier_key);

  request = BaseRequest();
  request.memory_budget_bytes = 8LL * (1LL << 30);
  const uint64_t budget8 = KeyOf(request);
  EXPECT_NE(budget8, base);
  EXPECT_NE(budget8, budget16);

  // A cache seeded by one budget must miss for the other.
  PlanCache cache(4);
  cache.Put(budget16, Plan("under 16 GiB"));
  EXPECT_FALSE(cache.Get(budget8).has_value());
  EXPECT_EQ(*cache.Get(budget16)->payload_json, "under 16 GiB");
}

TEST_F(PlanCacheKeyTest, BudgetSweepKeysAsItsBaseFrontierRequest) {
  // The sweep list is a lookup input, not a search input: a sweep request
  // must key exactly like the frontier request whose archive answers it —
  // that equality is what lets a warm cache serve the whole sweep without
  // re-entering the search.
  PlanRequest frontier_request = BaseRequest();
  frontier_request.frontier = true;
  const uint64_t frontier_key = KeyOf(frontier_request);

  PlanRequest sweep = BaseRequest();
  sweep.memory_budgets = {8LL * (1LL << 30), 16LL * (1LL << 30)};
  EXPECT_EQ(KeyOf(sweep), frontier_key);

  PlanRequest other_sweep = BaseRequest();
  other_sweep.memory_budgets = {4LL * (1LL << 30)};
  EXPECT_EQ(KeyOf(other_sweep), frontier_key)
      << "different budget lists share the one cached frontier";
}

TEST_F(PlanCacheKeyTest, GpuPriceChangesTheKey) {
  // The frontier payload carries a $/step axis derived from the GPU's
  // hourly price, so a re-priced cluster must not replay payloads priced
  // under the old rate.
  auto graph = models::BuildByName("gpt3-0.35b");
  ASSERT_TRUE(graph.ok());
  const SearchOptions options =
      ToSearchOptions(BaseRequest(), /*default_eval_threads=*/2);
  ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  const uint64_t base = PlanCacheKey(*graph, cluster, options);
  cluster.gpu.price_per_hour_usd *= 2.0;
  EXPECT_NE(PlanCacheKey(*graph, cluster, options), base);
}

TEST_F(PlanCacheKeyTest, FuzzNonSemanticPerturbationsAlwaysHit) {
  // Property fuzz in the spirit of the hash fuzz suite: any combination of
  // non-semantic perturbations keeps the key; flipping one semantic field
  // on top changes it.
  Rng rng(20240808);
  const uint64_t base = KeyOf(BaseRequest());
  for (int trial = 0; trial < 200; ++trial) {
    PlanRequest request = BaseRequest();
    if (rng.NextBelow(2) == 1) {
      request.request_id = "r" + std::to_string(rng.NextU64());
    }
    if (rng.NextBelow(2) == 1) {
      request.client = "client" + std::to_string(rng.NextBelow(100));
    }
    if (rng.NextBelow(2) == 1) request.stream = true;
    if (rng.NextBelow(2) == 1) {
      request.eval_threads = 1 + static_cast<int>(rng.NextBelow(16));
    }
    ASSERT_EQ(KeyOf(request), base) << "trial " << trial;

    switch (rng.NextBelow(4)) {
      case 0:
        request.seed += 1 + rng.NextBelow(1000);
        break;
      case 1:
        request.max_evaluations += 1 + static_cast<int64_t>(rng.NextBelow(9));
        break;
      case 2:
        // 1..6, never the base's 7.
        request.max_hops = 1 + static_cast<int>(rng.NextBelow(6));
        break;
      default:
        request.top_k = 6 + static_cast<int>(rng.NextBelow(4));
        break;
    }
    ASSERT_NE(KeyOf(request), base) << "trial " << trial;
  }
}

}  // namespace
}  // namespace serve
}  // namespace aceso
