// The profiled performance database (§3.3).
//
// Aceso's performance model is profiling-based: the times of each operator
// under each partition degree and the collective-communication times under
// each group size are measured once and reused across searches. This module
// provides that database.
//
// Because no GPUs exist in this environment, measurements come from a
// *simulated profiler* (see SimulatedProfiler below): it evaluates the
// analytical hardware model (src/hw) and overlays deterministic measurement
// jitter, then averages `runs_per_measurement` simulated runs exactly like
// the paper's methodology (50 runs per op). Entries are memoized on first
// use, and the database can be saved to / loaded from disk so later searches
// skip "profiling" entirely — mirroring the paper's reusable database.
//
// Concurrency: the database sits under every concurrent Evaluate() call —
// the stage-count workers and, since DESIGN.md §11, the intra-search
// evaluation batches. The memo maps are therefore striped into power-of-two
// lock shards selected by key hash, and a miss runs the simulated
// measurement *outside* any lock with a double-checked, first-writer-wins
// insert: concurrent fillers may measure the same key twice, but exactly one
// value is published, so memoized results stay deterministic. (The
// measurement itself is deterministic per key, making the race doubly
// harmless; first-writer-wins keeps the guarantee independent of that.)
//
// Read path (DESIGN.md §12): after warm-up the writers periodically publish
// an immutable open-addressing *snapshot* of the memo maps behind a single
// atomic pointer, and each thread keeps a small direct-mapped L1 of its
// recently used op and collective-bucket entries. A warm lookup touches the
// L1 (or the snapshot) and acquires no locks at all; only genuinely new keys
// fall through to the sharded maps. Published entries are immutable
// (first-writer-wins), so a snapshot or L1 hit always returns the exact bits
// the locked path would — the optimization is invisible to results.
// Snapshots are republished on geometric growth of the entry count (so
// republish work amortizes to O(n log n) over a whole search) and retired
// snapshots are kept until destruction, which lets readers hold a snapshot
// pointer without any reclamation protocol.
//
// Persistence (DESIGN.md §14): Save() serializes the database to a
// versioned, checksummed binary snapshot file whose header embeds the full
// ClusterSpec and its fingerprint; Load() *replaces* this database's
// contents with the file's and publishes the loaded entries directly as the
// immutable read snapshot — so a freshly loaded database serves its very
// first lookup lock-free from the snapshot, and a process started from a
// saved file runs zero simulated measurements for any key the file covers.
// Load refuses version mismatches, corrupt/truncated files (checksum), and
// snapshots profiled on a different cluster (fingerprint). Measurement
// values round-trip as raw IEEE-754 bits: a loaded database is bit-identical
// to the one that saved it.

#ifndef SRC_PROFILE_PROFILE_DB_H_
#define SRC_PROFILE_PROFILE_DB_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/hw/cluster.h"
#include "src/hw/gpu_spec.h"
#include "src/hw/interconnect.h"
#include "src/ir/operator.h"

namespace aceso {

// Measured execution time of one operator shard.
struct OpMeasurement {
  double fwd_seconds = 0.0;
  double bwd_seconds = 0.0;
};

// Identifies one op-time entry: operator identity, compute-shard degree,
// per-replica microbatch, precision.
struct OpProfileKey {
  uint64_t op_signature = 0;
  int shard_degree = 1;   // how many ways the op's compute is divided
  int local_batch = 1;    // microbatch size seen by one replica
  int precision = 0;      // Precision enum value

  bool operator==(const OpProfileKey& other) const {
    return op_signature == other.op_signature &&
           shard_degree == other.shard_degree &&
           local_batch == other.local_batch && precision == other.precision;
  }
  uint64_t Hash() const;
};

// Identifies one collective-time entry. Byte sizes are bucketed at powers of
// two and interpolated, keeping the database small.
struct CommProfileKey {
  int kind = 0;            // CollectiveKind enum value
  int group_size = 1;
  bool crosses_nodes = false;
  int log2_bytes = 0;      // bucket

  bool operator==(const CommProfileKey& other) const {
    return kind == other.kind && group_size == other.group_size &&
           crosses_nodes == other.crosses_nodes &&
           log2_bytes == other.log2_bytes;
  }
  uint64_t Hash() const;
};

// Produces "measurements" by evaluating the hardware model with
// deterministic per-key jitter. Stateless and thread-safe.
class SimulatedProfiler {
 public:
  SimulatedProfiler(const ClusterSpec& cluster, uint64_t seed,
                    int runs_per_measurement = 50);

  // Simulates `runs_per_measurement` timed runs of one op shard and returns
  // the averaged measurement.
  OpMeasurement MeasureOp(const Operator& op, const OpProfileKey& key) const;

  // Simulated time of one bucketed collective.
  double MeasureCollective(const CommProfileKey& key) const;

  // The wall-clock the paper would have spent obtaining this measurement
  // (runs x simulated op time); lets benches report profiling overhead.
  double SimulatedMeasurementCost(const OpMeasurement& m) const;

 private:
  ClusterSpec cluster_;
  InterconnectModel interconnect_;
  uint64_t seed_;
  int runs_;
};

// Header of a saved profile-snapshot file, readable without constructing a
// ProfileDatabase: the serving daemon uses it to build a database for the
// *file's* cluster before loading (DESIGN.md §14).
struct ProfileSnapshotInfo {
  ClusterSpec cluster;
  uint64_t cluster_fingerprint = 0;
  uint64_t op_entries = 0;
  uint64_t comm_entries = 0;
};

// Lookup/contention counters (monotonic; `operator-` attributes a delta to
// one search run, like StageCacheStats).
struct ProfileDbStats {
  int64_t lookups = 0;        // OpTime + bucketed CollectiveTime calls
  int64_t misses = 0;         // lookups that ran a simulated measurement
  int64_t lock_contended = 0; // shard acquisitions that had to block
  int64_t l1_hits = 0;        // served from the thread-local direct-mapped L1
  int64_t snapshot_hits = 0;  // served from the immutable snapshot
  int64_t republishes = 0;    // snapshot publications (incl. after Load)

  ProfileDbStats operator-(const ProfileDbStats& other) const {
    ProfileDbStats d;
    d.lookups = lookups - other.lookups;
    d.misses = misses - other.misses;
    d.lock_contended = lock_contended - other.lock_contended;
    d.l1_hits = l1_hits - other.l1_hits;
    d.snapshot_hits = snapshot_hits - other.snapshot_hits;
    d.republishes = republishes - other.republishes;
    return d;
  }
};

// Thread-safe memoizing database of op and collective measurements.
class ProfileDatabase {
 public:
  ProfileDatabase(const ClusterSpec& cluster, uint64_t seed = 20240422);
  ~ProfileDatabase();

  ProfileDatabase(const ProfileDatabase&) = delete;
  ProfileDatabase& operator=(const ProfileDatabase&) = delete;

  // Time of `op` with its compute divided `shard_degree` ways processing a
  // `local_batch`-sample microbatch. Memoized.
  OpMeasurement OpTime(const Operator& op, Precision precision,
                       int shard_degree, int local_batch);

  // Time of a collective over `bytes` with power-of-two bucketing and linear
  // interpolation between buckets. Memoized per bucket.
  double CollectiveTime(CollectiveKind kind, int64_t bytes,
                        const CommDomain& domain);

  // Number of distinct measured entries (ops + collectives).
  size_t NumEntries() const;

  // Total simulated wall-clock of all measurements performed so far (the
  // paper's "profiling overhead").
  double SimulatedProfilingSeconds() const;

  // Persistence: the on-disk database can be reloaded so future searches
  // reuse measurements (the paper profiles each model family once). The
  // format is the versioned binary snapshot described in the module comment;
  // Save writes entries in sorted key order, so equal databases produce
  // byte-identical files. Load replaces this database's contents, publishes
  // the loaded entries directly as the read snapshot, and fails (leaving the
  // database untouched) on bad magic, version mismatch, corruption, or a
  // cluster-fingerprint mismatch against `cluster()`.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  // Parses just the header of a saved snapshot file: the embedded
  // ClusterSpec, its fingerprint, and the entry counts. Validates the magic,
  // version, and whole-file checksum (so a truncated file is rejected here,
  // not at Load time).
  static StatusOr<ProfileSnapshotInfo> ReadSnapshotHeader(
      const std::string& path);

  const ClusterSpec& cluster() const { return cluster_; }

  ProfileDbStats stats() const;

  // Master switch for the snapshot + L1 read path (setup-time toggle, used
  // by benches and the on/off bit-identity tests). Disabled, every lookup
  // takes the original sharded-lock path; values are identical either way.
  bool read_optimizations_enabled() const {
    return read_opt_enabled_.load(std::memory_order_relaxed);
  }
  void set_read_optimizations_enabled(bool enabled) {
    read_opt_enabled_.store(enabled, std::memory_order_relaxed);
  }

 private:
  // Shard count: enough that 8 concurrent evaluators on disjoint keys
  // rarely collide (birthday bound ~1 - exp(-8*7/2/32) ≈ 58% of *any*
  // collision per instant, but per-pair just 3%), small enough that the
  // iteration paths (NumEntries/Save) stay trivial.
  static constexpr size_t kNumShards = 32;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, OpMeasurement> op_entries;
    std::unordered_map<uint64_t, double> comm_entries;
    double simulated_profiling_seconds = 0.0;
  };

  // Keys are Hasher digests (already well mixed); take high bits so shard
  // choice is independent of the unordered_map bucket index (low bits).
  Shard& ShardFor(uint64_t hash) const {
    return shards_[static_cast<size_t>(hash >> 56) % kNumShards];
  }

  // Locks `shard.mu`, counting the acquisition as contended when it had to
  // block.
  std::unique_lock<std::mutex> LockShard(const Shard& shard) const;

  double CollectiveBucketTime(const CommProfileKey& key);

  // The immutable read-optimized view; defined in the .cc. Published behind
  // `snapshot_` with release/acquire; never mutated after publication.
  struct Snapshot;

  // Republish once entries have grown geometrically past the last snapshot
  // (or past the warm-up floor for the first publication). Cheap no-op
  // check on the miss path; the rebuild itself runs under `republish_mu_`
  // with try_lock so concurrent fillers never convoy behind it.
  void MaybeRepublish();
  // `block` = wait for the republish mutex (setup-time callers: Load);
  // otherwise bail out if another thread is already rebuilding.
  void RepublishSnapshot(bool block);

  ClusterSpec cluster_;
  SimulatedProfiler profiler_;

  mutable std::array<Shard, kNumShards> shards_;
  mutable std::atomic<int64_t> lookups_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> lock_contended_{0};
  mutable std::atomic<int64_t> l1_hits_{0};
  mutable std::atomic<int64_t> snapshot_hits_{0};
  std::atomic<int64_t> republishes_{0};

  std::atomic<bool> read_opt_enabled_{true};
  // Instance tag for thread-local L1 entries: drawn from a process-global
  // counter at construction and re-drawn by Load() (which may overwrite
  // published values), so stale L1 entries from another instance — or from
  // this instance pre-Load — can never match.
  std::atomic<uint64_t> generation_;
  std::atomic<const Snapshot*> snapshot_{nullptr};
  std::atomic<size_t> total_entries_{0};     // across all shards
  std::atomic<size_t> snapshot_entries_{0};  // entry count at last publish
  // Guards snapshot rebuilds and `retired_`. Never taken on the read path.
  mutable std::mutex republish_mu_;
  // Replaced snapshots, freed at destruction: readers may hold a snapshot
  // pointer briefly without any reclamation protocol, and geometric
  // republishing bounds total retired memory at a constant factor of the
  // final snapshot.
  std::vector<const Snapshot*> retired_;
};

}  // namespace aceso

#endif  // SRC_PROFILE_PROFILE_DB_H_
