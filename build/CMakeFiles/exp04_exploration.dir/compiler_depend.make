# Empty compiler generated dependencies file for exp04_exploration.
# This may be replaced when dependencies are built.
