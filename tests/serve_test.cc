// End-to-end tests of the planning service and daemon (DESIGN.md §14):
// request parsing, the cache / single-flight / admission layers, profile
// snapshot warm starts, and the loopback HTTP transport.

#include "src/serve/service.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/serve/daemon.h"
#include "src/serve/http.h"
#include "src/serve/plan_protocol.h"

namespace aceso {
namespace serve {
namespace {

// A deterministic, fast request: the evaluation budget bounds the search
// (bit-reproducibly) well under a second.
PlanRequest FastRequest() {
  PlanRequest request;
  request.model = "gpt3-0.35b";
  request.gpus = 4;
  request.max_evaluations = 40;
  request.budget_seconds = 60.0;  // wall clock never binds
  return request;
}

// ---- request parsing ----

TEST(PlanProtocolTest, ParsesFullRequest) {
  auto request = ParsePlanRequestJson(
      R"({"model":"gpt3-1.3b","gpus":8,"budget_seconds":1.5,
          "max_evaluations":100,"max_hops":5,"stages":2,"seed":7,
          "seed_mode":"dp","top_k":3,"request_id":"r9","client":"test",
          "stream":true,"eval_threads":4})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->model, "gpt3-1.3b");
  EXPECT_EQ(request->gpus, 8);
  EXPECT_DOUBLE_EQ(request->budget_seconds, 1.5);
  EXPECT_EQ(request->max_evaluations, 100);
  EXPECT_EQ(request->max_hops, 5);
  EXPECT_EQ(request->stages, 2);
  EXPECT_EQ(request->seed, 7u);
  EXPECT_EQ(request->seed_mode, SeedMode::kDp);
  EXPECT_EQ(request->top_k, 3);
  EXPECT_EQ(request->request_id, "r9");
  EXPECT_EQ(request->client, "test");
  EXPECT_TRUE(request->stream);
  EXPECT_EQ(request->eval_threads, 4);
}

TEST(PlanProtocolTest, RejectsUnknownField) {
  auto request =
      ParsePlanRequestJson(R"({"model":"gpt3-0.35b","max_evals":5})");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("max_evals"), std::string::npos);
}

TEST(PlanProtocolTest, RejectsMissingModel) {
  auto request = ParsePlanRequestJson(R"({"gpus":8})");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("model"), std::string::npos);
}

TEST(PlanProtocolTest, RejectsWrongTypes) {
  EXPECT_FALSE(ParsePlanRequestJson(R"({"model":3})").ok());
  EXPECT_FALSE(
      ParsePlanRequestJson(R"({"model":"gpt3-0.35b","gpus":"8"})").ok());
  EXPECT_FALSE(
      ParsePlanRequestJson(R"({"model":"gpt3-0.35b","gpus":2.5})").ok());
  EXPECT_FALSE(
      ParsePlanRequestJson(R"({"model":"gpt3-0.35b","stream":"yes"})").ok());
  EXPECT_FALSE(ParsePlanRequestJson("[1,2]").ok());
  EXPECT_FALSE(ParsePlanRequestJson("not json").ok());
}

TEST(PlanProtocolTest, RejectsUnknownSeedMode) {
  auto request = ParsePlanRequestJson(
      R"({"model":"gpt3-0.35b","seed_mode":"random"})");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("heuristic|dp"),
            std::string::npos);
}

TEST(PlanProtocolTest, ParsesFrontierAndSweepFields) {
  auto request = ParsePlanRequestJson(
      R"({"model":"gpt3-0.35b","frontier":true,
          "memory_budgets":[1073741824,2147483648]})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_TRUE(request->frontier);
  ASSERT_EQ(request->memory_budgets.size(), 2u);
  EXPECT_EQ(request->memory_budgets[0], 1073741824);
  // A sweep runs the base frontier search: track_frontier is implied and
  // the search itself runs at device capacity.
  const SearchOptions options = ToSearchOptions(*request, 2);
  EXPECT_TRUE(options.track_frontier);
  EXPECT_EQ(options.memory_budget_bytes, 0);
}

TEST(PlanProtocolTest, RejectsSweepCombinedWithFixedBudget) {
  auto request = ParsePlanRequestJson(
      R"({"model":"gpt3-0.35b","memory_budgets":[1073741824],
          "memory_budget_bytes":1073741824})");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("memory_budgets"),
            std::string::npos);
}

TEST(PlanProtocolTest, FixedStagesCollapsesTheRange) {
  PlanRequest request = FastRequest();
  request.stages = 3;
  const SearchOptions options = ToSearchOptions(request, 2);
  EXPECT_EQ(options.min_stages, 3);
  EXPECT_EQ(options.max_stages, 3);
}

// ---- the service's three layers ----

TEST(PlanServiceTest, DuplicateRequestServedFromCacheWithoutSearch) {
  PlanService service;
  const PlanService::Response first = service.Handle(FastRequest());
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.cache, "miss");

  const PlanService::Response second = service.Handle(FastRequest());
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.cache, "hit");

  // The counter proof that no second search ran.
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);

  // A hit replays the stored payload byte for byte; only the envelope
  // (request id, cache tag) differs.
  auto first_doc = JsonParse(first.body());
  auto second_doc = JsonParse(second.body());
  ASSERT_TRUE(first_doc.ok() && second_doc.ok());
  EXPECT_EQ(first_doc->Find("payload")->ToJson(),
            second_doc->Find("payload")->ToJson());
  EXPECT_EQ(first.key, second.key);
}

TEST(PlanServiceTest, DifferentSeedIsACacheMiss) {
  PlanService service;
  service.Handle(FastRequest());
  PlanRequest other = FastRequest();
  other.seed = 7;
  const PlanService::Response response = service.Handle(other);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.cache, "miss");
  EXPECT_EQ(service.stats().completed, 2);
}

// ---- neighbor-seeded incremental planning (DESIGN.md §17) ----

TEST(PlanServiceTest, PerturbedMissIsNeighborSeededAndCounted) {
  PlanService service;
  const PlanService::Response first = service.Handle(FastRequest());
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(service.stats().neighbor_seeded, 0)
      << "empty similarity index: the first miss searches unseeded";

  // Same model family and cluster family, different key: the second miss
  // probes the index, finds the first answer, and seeds from it.
  PlanRequest perturbed = FastRequest();
  perturbed.seed = 7;
  const PlanService::Response second = service.Handle(perturbed);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.cache, "miss");

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.neighbor_seeded, 1);
  EXPECT_EQ(stats.seed_adopted + stats.seed_fallbacks, stats.neighbor_seeded)
      << "every seeded miss resolves to adopted or fallback";
  const PlanCacheStats cache_stats = service.plan_cache_stats();
  EXPECT_EQ(cache_stats.neighbor_probes, 2);  // both misses probed
  EXPECT_EQ(cache_stats.neighbor_hits, 1);    // only the second found a plan

  // The counters ride the /stats JSON like every other stat.
  const std::string json = service.StatsJson();
  EXPECT_NE(json.find("\"neighbor_seeded\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seed_adopted\":"), std::string::npos);
  EXPECT_NE(json.find("\"seed_fallbacks\":"), std::string::npos);
}

TEST(PlanServiceTest, NeighborSeedingAdaptsAcrossDeviceCounts) {
  // The neighbor's plan was searched for 4 GPUs; the request asks for 8.
  // Adaptation re-maps devices (src/core/seed_adapt.h) and the search still
  // completes with the invariant intact.
  PlanService service;
  ASSERT_TRUE(service.Handle(FastRequest()).status.ok());
  PlanRequest bigger = FastRequest();
  bigger.gpus = 8;
  const PlanService::Response response = service.Handle(bigger);
  ASSERT_TRUE(response.status.ok());
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.neighbor_seeded, 1);
  EXPECT_EQ(stats.seed_adopted + stats.seed_fallbacks, 1);
}

TEST(PlanServiceTest, NeighborSeedOffNeverProbesTheIndex) {
  ServeOptions options;
  options.neighbor_seed = false;
  PlanService service(options);
  ASSERT_TRUE(service.Handle(FastRequest()).status.ok());
  PlanRequest other = FastRequest();
  other.seed = 7;
  ASSERT_TRUE(service.Handle(other).status.ok());
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.neighbor_seeded, 0);
  EXPECT_EQ(service.plan_cache_stats().neighbor_probes, 0);
  EXPECT_EQ(service.plan_cache_stats().neighbor_hits, 0);
}

TEST(PlanServiceTest, SeededAnswerNeverWorseThanUnseededAtEqualBudget) {
  // The §17 floor, end to end: for the same request sequence at the same
  // evaluation budget, a neighbor-seeding service must answer the perturbed
  // request with a plan at least as good as the strictly-unseeded service's.
  auto iteration_time_of = [](const PlanService::Response& response) {
    auto doc = JsonParse(response.body());
    EXPECT_TRUE(doc.ok());
    const JsonValue* payload = doc->Find("payload");
    const JsonValue* plan = payload ? payload->Find("plan") : nullptr;
    const JsonValue* time = plan ? plan->Find("iteration_time") : nullptr;
    return time != nullptr && time->is_number() ? time->number_value() : 1e300;
  };

  ServeOptions off;
  off.neighbor_seed = false;
  PlanService seeded_service;
  PlanService unseeded_service(off);

  PlanRequest perturbed = FastRequest();
  perturbed.gpus = 8;
  double seeded_time = 0.0, unseeded_time = 0.0;
  for (auto& [service, time] :
       {std::pair<PlanService*, double*>{&seeded_service, &seeded_time},
        {&unseeded_service, &unseeded_time}}) {
    ASSERT_TRUE(service->Handle(FastRequest()).status.ok());
    const PlanService::Response response = service->Handle(perturbed);
    ASSERT_TRUE(response.status.ok());
    *time = iteration_time_of(response);
  }
  EXPECT_LE(seeded_time, unseeded_time + 1e-12)
      << "the re-verdict + fallback must hold the unseeded floor";
}

TEST(PlanServiceTest, UnknownModelErrorListsZooNames) {
  PlanService service;
  PlanRequest request = FastRequest();
  request.model = "gpt5";
  const PlanService::Response response = service.Handle(request);
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(response.status.message().find("known models"),
            std::string::npos);
  EXPECT_EQ(service.stats().errors, 1);
  // The error envelope is well-formed JSON with the status code name.
  auto doc = JsonParse(response.body());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->string_value(), "error");
  EXPECT_EQ(doc->Find("code")->string_value(), "INVALID_ARGUMENT");
}

TEST(PlanServiceTest, AdmissionRejectsWhenSaturated) {
  // max_inflight_searches = 0 makes every search inadmissible, so the
  // rejection path is exercised deterministically.
  ServeOptions options;
  options.max_inflight_searches = 0;
  PlanService service(options);
  const PlanService::Response response = service.Handle(FastRequest());
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected, 1);
  EXPECT_EQ(service.stats().completed, 0);
  // Rejection happens before any caching: a retry once capacity exists
  // (not here) would still be a miss, not a stale hit.
  EXPECT_EQ(service.plan_cache_stats().inserts, 0);
}

TEST(PlanServiceTest, ConcurrentDuplicatesRunOneSearch) {
  PlanService service;
  constexpr int kClients = 8;
  std::vector<PlanService::Response> responses(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&service, &responses, i] {
      responses[static_cast<size_t>(i)] = service.Handle(FastRequest());
    });
  }
  for (auto& thread : threads) thread.join();

  // However the arrivals interleave (single-flight wait, cache hit, or the
  // one real search), exactly one search ran and every client got the same
  // payload.
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.completed, 1);
  // Every request probes the cache exactly once (coalesced requests probed
  // and missed before attaching to the in-flight search).
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, kClients);
  EXPECT_LE(stats.coalesced, stats.cache_misses - 1);
  auto first_payload = JsonParse(responses[0].body());
  ASSERT_TRUE(first_payload.ok());
  const std::string want = first_payload->Find("payload")->ToJson();
  for (const PlanService::Response& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    auto doc = JsonParse(response.body());
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->Find("payload")->ToJson(), want);
  }
}

TEST(PlanServiceTest, StreamingRequestEmitsEventsAndFinalPayload) {
  PlanService service;
  std::atomic<int> events{0};
  const PlanService::Response response =
      service.Handle(FastRequest(), [&events](const std::string& line) {
        // Every streamed line is one well-formed JSON event.
        EXPECT_TRUE(JsonValidate(line).ok()) << line;
        events.fetch_add(1);
      });
  ASSERT_TRUE(response.status.ok());
  EXPECT_GT(events.load(), 0);
  EXPECT_EQ(response.cache, "miss");
}

// ---- budget sweeps: the frontier answers without a search ----

TEST(PlanServiceTest, ColdSweepRunsOneFrontierSearchForAllBudgets) {
  PlanService service;
  PlanRequest sweep = FastRequest();
  sweep.memory_budgets = {8LL * (1LL << 30), 30LL * (1LL << 30)};
  const PlanService::Response response = service.Handle(sweep);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1) << "one search covers every listed budget";
  EXPECT_EQ(stats.budget_sweeps, 1);
  EXPECT_EQ(stats.sweeps_from_cache, 0);

  auto doc = JsonParse(response.body());
  ASSERT_TRUE(doc.ok()) << response.body();
  const JsonValue* sweep_doc = doc->Find("payload")->Find("sweep");
  ASSERT_NE(sweep_doc, nullptr) << response.body();
  ASSERT_EQ(sweep_doc->size(), 2u);
  for (size_t i = 0; i < sweep_doc->size(); ++i) {
    const JsonValue& entry = sweep_doc->item(i);
    EXPECT_EQ(entry.Find("memory_budget_bytes")->int_value(),
              sweep.memory_budgets[i]);
    if (entry.Find("found")->bool_value()) {
      EXPECT_GT(entry.Find("iteration_time")->number_value(), 0.0);
      EXPECT_LE(entry.Find("peak_memory_bytes")->int_value(),
                sweep.memory_budgets[i]);
      EXPECT_FALSE(entry.Find("config_text")->string_value().empty());
    }
  }
  // At device capacity an answer must exist: the base search found one.
  EXPECT_TRUE(sweep_doc->item(1).Find("found")->bool_value());
}

TEST(PlanServiceTest, WarmSweepIsAnsweredFromTheCachedFrontier) {
  // ISSUE-8 acceptance: after one frontier request, a budget-sweep query
  // over the same (model, cluster, options) never re-enters AcesoSearch —
  // the counters are the proof.
  PlanService service;
  PlanRequest frontier_request = FastRequest();
  frontier_request.frontier = true;
  const PlanService::Response first = service.Handle(frontier_request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.cache, "miss");
  ASSERT_EQ(service.stats().completed, 1);

  PlanRequest sweep = FastRequest();
  sweep.memory_budgets = {4LL * (1LL << 30), 8LL * (1LL << 30),
                          30LL * (1LL << 30)};
  const PlanService::Response swept = service.Handle(sweep);
  ASSERT_TRUE(swept.status.ok()) << swept.status.ToString();
  EXPECT_EQ(swept.cache, "hit");
  EXPECT_EQ(swept.key, first.key) << "a sweep keys as its frontier request";

  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1) << "the sweep must not run a second search";
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.budget_sweeps, 1);
  EXPECT_EQ(stats.sweeps_from_cache, 1);

  auto doc = JsonParse(swept.body());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("payload")->Find("sweep")->size(), 3u);

  // A different budget list is still the same cached frontier.
  PlanRequest other = FastRequest();
  other.memory_budgets = {16LL * (1LL << 30)};
  const PlanService::Response again = service.Handle(other);
  ASSERT_TRUE(again.status.ok());
  EXPECT_EQ(again.cache, "hit");
  EXPECT_EQ(service.stats().completed, 1);
  EXPECT_EQ(service.stats().sweeps_from_cache, 2);
}

TEST(PlanServiceTest, CacheHitsSkipSerializationAndSweepRendersAreMemoized) {
  // ISSUE-9: a hit replays the pre-serialized payload by reference — no
  // JSON is rebuilt — and a sweep's rendered payload is itself cached per
  // budget list, so repeating the sweep skips even the sweep rendering.
  PlanService service;
  const PlanService::Response first = service.Handle(FastRequest());
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(service.stats().serializations_skipped, 0)
      << "a miss serializes once";

  PlanRequest hit_request = FastRequest();
  hit_request.request_id = "hit-1";  // non-semantic: still the same key
  const PlanService::Response hit = service.Handle(hit_request);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_EQ(hit.cache, "hit");
  EXPECT_EQ(service.stats().serializations_skipped, 1);
  // The parts share one string: body_mid is the cached payload itself.
  ASSERT_NE(hit.body_mid, nullptr);
  EXPECT_EQ(hit.body(), BuildResponseEnvelope("hit-1", "hit", *hit.body_mid))
      << "parts must assemble bit-identically to full serialization";

  // Sweeps: the first render per budget list is a derived-cache miss that
  // gets memoized; the identical sweep again is served without rendering.
  PlanRequest frontier_request = FastRequest();
  frontier_request.frontier = true;
  ASSERT_TRUE(service.Handle(frontier_request).status.ok());
  PlanRequest sweep = FastRequest();
  sweep.memory_budgets = {8LL * (1LL << 30), 30LL * (1LL << 30)};
  const PlanService::Response rendered = service.Handle(sweep);
  ASSERT_TRUE(rendered.status.ok()) << rendered.status.ToString();
  const int64_t after_render = service.stats().serializations_skipped;
  EXPECT_EQ(after_render, 1) << "first render of this budget list is real";
  EXPECT_EQ(service.plan_cache_stats().derived_inserts, 1);

  const PlanService::Response replayed = service.Handle(sweep);
  ASSERT_TRUE(replayed.status.ok());
  EXPECT_EQ(service.stats().serializations_skipped, after_render + 1);
  EXPECT_EQ(service.plan_cache_stats().derived_hits, 1);
  EXPECT_EQ(replayed.body_mid.get(), rendered.body_mid.get())
      << "the very same rendered string is replayed";

  // A different budget list renders fresh (derived miss), then memoizes.
  PlanRequest other = FastRequest();
  other.memory_budgets = {16LL * (1LL << 30)};
  ASSERT_TRUE(service.Handle(other).status.ok());
  EXPECT_EQ(service.stats().serializations_skipped, after_render + 1);
  EXPECT_EQ(service.plan_cache_stats().derived_inserts, 2);
}

// ---- profile snapshots: the warm-start path ----

TEST(PlanServiceTest, WarmStartedServiceRunsZeroProfileMeasurements) {
  const std::string dir = ::testing::TempDir() + "/serve_warm_snapshots";

  // Cold service: search once (profiling happens here), persist profiles.
  uint64_t cold_key = 0;
  std::string cold_plan;
  {
    PlanService cold;
    const PlanService::Response response = cold.Handle(FastRequest());
    ASSERT_TRUE(response.status.ok());
    cold_key = response.key;
    auto doc = JsonParse(response.body());
    ASSERT_TRUE(doc.ok());
    cold_plan = doc->Find("payload")->Find("plan")->ToJson();
    EXPECT_GT(cold.stats().profile_misses, 0);
    ASSERT_TRUE(cold.SaveProfiles(dir).ok());
  }

  // Warm service: same request re-runs the search (its plan cache starts
  // empty), but every profile lookup hits the loaded snapshot — the
  // acceptance bar is literally zero measure calls.
  ServeOptions options;
  options.snapshot_dir = dir;
  PlanService warm(options);
  const PlanService::Response response = warm.Handle(FastRequest());
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.cache, "miss");  // plan caches are per-process
  const ServeStats stats = warm.stats();
  EXPECT_EQ(stats.warm_starts, 1);
  EXPECT_EQ(stats.warm_start_errors, 0);
  EXPECT_GT(stats.profile_lookups, 0);
  EXPECT_EQ(stats.profile_misses, 0);

  // Determinism, end to end: the warm search reproduces the cold plan bit
  // for bit under the same cache key. (Only the plan object — the payload's
  // search timings and convergence timestamps are wall-clock.)
  EXPECT_EQ(response.key, cold_key);
  auto doc = JsonParse(response.body());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("payload")->Find("plan")->ToJson(), cold_plan);

  std::remove(ProfileSnapshotPath(
                  dir, ClusterSpec::WithGpuCount(FastRequest().gpus)
                           .Fingerprint())
                  .c_str());
}

TEST(PlanServiceTest, CorruptSnapshotFallsBackToColdStart) {
  const std::string dir = ::testing::TempDir() + "/serve_corrupt_snapshots";
  PlanService preparer;
  ASSERT_TRUE(preparer.Handle(FastRequest()).status.ok());
  ASSERT_TRUE(preparer.SaveProfiles(dir).ok());
  const std::string path = ProfileSnapshotPath(
      dir,
      ClusterSpec::WithGpuCount(FastRequest().gpus).Fingerprint());
  // Stomp the file: the warm-start probe must refuse it and run cold.
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage", f);
    std::fclose(f);
  }

  ServeOptions options;
  options.snapshot_dir = dir;
  PlanService service(options);
  const PlanService::Response response = service.Handle(FastRequest());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.warm_starts, 0);
  EXPECT_EQ(stats.warm_start_errors, 1);
  EXPECT_GT(stats.profile_misses, 0);  // it really profiled from scratch
  std::remove(path.c_str());
}

// ---- the HTTP daemon ----

class PlanDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(daemon_.Start("127.0.0.1", 0).ok());
    port_ = daemon_.port();
    ASSERT_GT(port_, 0);
  }

  PlanDaemon daemon_;
  int port_ = 0;
};

TEST_F(PlanDaemonTest, HealthzAndStats) {
  auto health = HttpCall("127.0.0.1", port_, "GET", "/healthz", "");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
  EXPECT_EQ(health->body, "{\"status\":\"ok\"}");

  auto stats = HttpCall("127.0.0.1", port_, "GET", "/stats", "");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status_code, 200);
  auto doc = JsonParse(stats->body);
  ASSERT_TRUE(doc.ok()) << stats->body;
  EXPECT_EQ(doc->Find("requests")->int_value(), 0);
}

TEST_F(PlanDaemonTest, PlanRoundTripAndDuplicateHit) {
  const std::string body =
      R"({"model":"gpt3-0.35b","gpus":4,"max_evaluations":40,
          "budget_seconds":60})";
  auto first = HttpCall("127.0.0.1", port_, "POST", "/plan", body);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status_code, 200);
  auto first_doc = JsonParse(first->body);
  ASSERT_TRUE(first_doc.ok()) << first->body;
  EXPECT_EQ(first_doc->Find("status")->string_value(), "ok");
  EXPECT_EQ(first_doc->Find("cache")->string_value(), "miss");
  EXPECT_TRUE(first_doc->Find("payload")->Find("found")->bool_value());

  auto second = HttpCall("127.0.0.1", port_, "POST", "/plan", body);
  ASSERT_TRUE(second.ok());
  auto second_doc = JsonParse(second->body);
  ASSERT_TRUE(second_doc.ok());
  EXPECT_EQ(second_doc->Find("cache")->string_value(), "hit");

  // /stats agrees over the wire: one search, one hit.
  auto stats = HttpCall("127.0.0.1", port_, "GET", "/stats", "");
  ASSERT_TRUE(stats.ok());
  auto stats_doc = JsonParse(stats->body);
  ASSERT_TRUE(stats_doc.ok());
  EXPECT_EQ(stats_doc->Find("completed")->int_value(), 1);
  EXPECT_EQ(stats_doc->Find("cache_hits")->int_value(), 1);
}

TEST_F(PlanDaemonTest, StreamingPlanEmitsNdjson) {
  const std::string body =
      R"({"model":"gpt3-0.35b","gpus":4,"max_evaluations":40,
          "budget_seconds":60,"stream":true})";
  std::vector<std::string> lines;
  auto response = HttpCallStreaming(
      "127.0.0.1", port_, "POST", "/plan", body,
      [&lines](std::string_view line) { lines.emplace_back(line); });
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  ASSERT_GT(lines.size(), 1u);  // events, then the envelope
  for (const std::string& line : lines) {
    EXPECT_TRUE(JsonValidate(line).ok()) << line;
  }
  auto final_doc = JsonParse(lines.back());
  ASSERT_TRUE(final_doc.ok());
  EXPECT_EQ(final_doc->Find("status")->string_value(), "ok");
  EXPECT_TRUE(final_doc->Find("payload")->Find("found")->bool_value());
}

TEST_F(PlanDaemonTest, ErrorStatusesMapOntoHttp) {
  // Parse error → 400.
  auto bad = HttpCall("127.0.0.1", port_, "POST", "/plan", "{\"gpus\":4}");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status_code, 400);
  auto bad_doc = JsonParse(bad->body);
  ASSERT_TRUE(bad_doc.ok());
  EXPECT_EQ(bad_doc->Find("status")->string_value(), "error");

  // Unknown endpoint → 404; wrong verb → 405.
  auto missing = HttpCall("127.0.0.1", port_, "GET", "/nope", "");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);
  auto verb = HttpCall("127.0.0.1", port_, "GET", "/plan", "");
  ASSERT_TRUE(verb.ok());
  EXPECT_EQ(verb->status_code, 405);

  // /profile/save without a snapshot dir → 400 (InvalidArgument).
  auto save = HttpCall("127.0.0.1", port_, "POST", "/profile/save", "");
  ASSERT_TRUE(save.ok());
  EXPECT_EQ(save->status_code, 400);
}

// Sends raw bytes and returns everything the server writes back. HttpCall
// cannot emit an invalid Content-Length by construction, so the header
// hardening below needs a transport that can.
std::string RawHttp(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(PlanDaemonTest, MalformedContentLengthIsRejectedNotTrusted) {
  // RawHttp is close-delimited, so ask the server to close (the reactor
  // keeps HTTP/1.1 connections alive by default).
  auto post = [&](const std::string& content_length) {
    return RawHttp(port_,
                   "POST /plan HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
                   "Content-Length: " +
                       content_length + "\r\n\r\n{}");
  };
  // 20 digits: strtoull would silently wrap modulo 2^64 and the server
  // would then trust a tiny bogus body size. The strict parse rejects the
  // value the moment it exceeds the body cap.
  EXPECT_NE(post("99999999999999999999").find(" 400 "), std::string::npos);
  // Signs and whitespace are not digits, even though strtoull accepts them.
  EXPECT_NE(post("+2").find(" 400 "), std::string::npos);
  EXPECT_NE(post("-2").find(" 400 "), std::string::npos);
  EXPECT_NE(post("2x").find(" 400 "), std::string::npos);
  EXPECT_NE(post("").find(" 400 "), std::string::npos);
  // Just over the 8 MiB body cap is rejected too, not buffered.
  EXPECT_NE(post("8388609").find(" 400 "), std::string::npos);
  // The same request with an honest length still works.
  const std::string ok = post("2");
  EXPECT_NE(ok.find(" 400 "), std::string::npos)
      << "\"{}\" has no model field: parse error, but an HTTP-level accept";
  EXPECT_NE(ok.find("model"), std::string::npos)
      << "the 400 must come from the JSON layer, not the header parser";
}

}  // namespace
}  // namespace serve
}  // namespace aceso
