#include "src/runtime/pipeline_executor.h"

#include <gtest/gtest.h>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(4)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_),
        executor_(&model_) {}

  ParallelConfig Even(int stages, int mbs = 1) {
    auto config = MakeEvenConfig(graph_, cluster_, stages, mbs);
    EXPECT_TRUE(config.ok());
    return *std::move(config);
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
  PipelineExecutor executor_;
};

TEST_F(ExecutorTest, ProducesPositiveIterationTime) {
  const ExecutionResult result = executor_.Execute(Even(2, 2));
  EXPECT_GT(result.iteration_seconds, 0.0);
  EXPECT_EQ(result.stages.size(), 2u);
}

TEST_F(ExecutorTest, DeterministicForSameSeed) {
  const ParallelConfig config = Even(2, 2);
  ExecutionOptions options;
  options.seed = 11;
  const ExecutionResult a = executor_.Execute(config, options);
  const ExecutionResult b = executor_.Execute(config, options);
  EXPECT_DOUBLE_EQ(a.iteration_seconds, b.iteration_seconds);
  EXPECT_EQ(a.stages[0].peak_reserved_bytes, b.stages[0].peak_reserved_bytes);
}

TEST_F(ExecutorTest, SeedVariesTiming) {
  const ParallelConfig config = Even(2, 2);
  ExecutionOptions a;
  a.seed = 1;
  ExecutionOptions b;
  b.seed = 2;
  EXPECT_NE(executor_.Execute(config, a).iteration_seconds,
            executor_.Execute(config, b).iteration_seconds);
}

TEST_F(ExecutorTest, ActualTracksPrediction) {
  // The executor and the closed-form model describe the same plan; their
  // iteration times agree within a loose factor (Exp#8 measures the tight
  // one).
  const ParallelConfig config = Even(4, 2);
  const PerfResult predicted = model_.Evaluate(config);
  const ExecutionResult actual = executor_.Execute(config);
  EXPECT_GT(actual.iteration_seconds, predicted.iteration_time * 0.7);
  EXPECT_LT(actual.iteration_seconds, predicted.iteration_time * 1.3);
}

TEST_F(ExecutorTest, PipelineOverlapBeatsSequentialSum) {
  // The pipeline makespan is far below the sum of all stage busy times
  // (i.e. stages really do overlap).
  const ExecutionResult result = executor_.Execute(Even(4, 2));
  double busy_sum = 0.0;
  for (const StageExecution& s : result.stages) {
    busy_sum += s.gpu_busy_seconds;
  }
  EXPECT_LT(result.iteration_seconds, busy_sum * 0.9);
}

TEST_F(ExecutorTest, MemorySimulationReportsPeaks) {
  const ExecutionResult result = executor_.Execute(Even(2, 2));
  for (const StageExecution& s : result.stages) {
    EXPECT_GT(s.peak_allocated_bytes, 0);
    EXPECT_GE(s.peak_reserved_bytes, s.peak_allocated_bytes);
  }
}

TEST_F(ExecutorTest, ModelOverestimatesActualMemory) {
  // §3.3: the performance model deliberately overestimates reserved memory;
  // the simulated allocator should come in at or below the prediction for
  // the heaviest stage.
  const ParallelConfig config = Even(2, 4);
  const PerfResult predicted = model_.Evaluate(config);
  const ExecutionResult actual = executor_.Execute(config);
  const int64_t predicted_peak = predicted.MaxMemory();
  int64_t actual_peak = 0;
  for (const StageExecution& s : actual.stages) {
    actual_peak = std::max(actual_peak, s.peak_reserved_bytes);
  }
  EXPECT_LT(actual_peak, static_cast<int64_t>(
                             static_cast<double>(predicted_peak) * 1.15));
}

TEST_F(ExecutorTest, SkippingMemorySimulationLeavesZeroes) {
  ExecutionOptions options;
  options.simulate_memory = false;
  const ExecutionResult result = executor_.Execute(Even(2, 2), options);
  EXPECT_FALSE(result.oom);
  EXPECT_EQ(result.stages[0].peak_reserved_bytes, 0);
}

TEST_F(ExecutorTest, OomDetectedOnTinyDevice) {
  ClusterSpec tiny = cluster_;
  tiny.gpu.memory_bytes = 2 * kGiB;
  ProfileDatabase db(tiny);
  PerformanceModel model(&graph_, tiny, &db);
  PipelineExecutor executor(&model);
  auto config = MakeEvenConfig(graph_, tiny, 1, 8);
  ASSERT_TRUE(config.ok());
  const ExecutionResult result = executor.Execute(*config);
  EXPECT_TRUE(result.oom);
}

TEST_F(ExecutorTest, RecomputationLowersActualMemory) {
  ParallelConfig plain = Even(2, 4);
  ParallelConfig recomputed = plain;
  for (int i = 0; i < graph_.num_ops(); ++i) {
    recomputed.MutableOpSettings(i).recompute = true;
  }
  const ExecutionResult a = executor_.Execute(plain);
  const ExecutionResult b = executor_.Execute(recomputed);
  EXPECT_LT(b.stages[0].peak_reserved_bytes, a.stages[0].peak_reserved_bytes);
  EXPECT_GT(b.iteration_seconds, a.iteration_seconds);
}

TEST_F(ExecutorTest, ThroughputAndTflopsHelpers) {
  const ExecutionResult result = executor_.Execute(Even(2, 2));
  EXPECT_GT(result.Throughput(graph_.global_batch_size()), 0.0);
  const double tflops = executor_.EffectiveTflopsPerGpu(result);
  EXPECT_GT(tflops, 1.0);
  EXPECT_LT(tflops, 125.0);  // below fp16 peak
}

TEST_F(ExecutorTest, EarlierStagesHoldMoreMemory) {
  // 1F1B keeps (p - s) microbatches in flight: with a balanced partition,
  // the first stage's peak dominates the last stage's.
  const ExecutionResult result = executor_.Execute(Even(4, 2));
  EXPECT_GT(result.stages[0].peak_reserved_bytes,
            result.stages[3].peak_reserved_bytes);
}

}  // namespace
}  // namespace aceso
