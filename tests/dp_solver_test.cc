#include "src/baselines/dp_solver.h"

#include <gtest/gtest.h>

#include "src/core/search.h"
#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class DpSolverTest : public ::testing::Test {
 protected:
  DpSolverTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(8)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  DpSolverOptions FastOptions() {
    DpSolverOptions options;
    options.max_microbatch = 8;
    options.max_stages = 4;
    return options;
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(DpSolverTest, FindsFeasibleConfig) {
  const BaselineResult result = DpSolverSearch(model_, FastOptions());
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.best.perf.oom);
  EXPECT_TRUE(result.best.config.Validate(graph_, cluster_).ok());
}

TEST_F(DpSolverTest, ExploresManyConfigurations) {
  // The DP's exploration count dwarfs Aceso's (Exp#4's point).
  const BaselineResult result = DpSolverSearch(model_, FastOptions());
  EXPECT_GT(result.configs_explored, 100000);
}

TEST_F(DpSolverTest, RespectsMaxExploredCap) {
  DpSolverOptions options = FastOptions();
  options.max_explored = 1000;
  const BaselineResult result = DpSolverSearch(model_, options);
  // Cap is a loose guard checked between phases: it must stop growth within
  // one stage-count round.
  EXPECT_LT(result.configs_explored, 50'000'000);
}

TEST_F(DpSolverTest, QualityComparableToAceso) {
  // Exp#4/Figure 10(b): the exhaustive DP and Aceso find configurations of
  // similar quality, with Aceso exploring a small fraction of the space.
  const BaselineResult dp = DpSolverSearch(model_, FastOptions());
  SearchOptions options;
  options.time_budget_seconds = 1.0;
  const SearchResult aceso = AcesoSearch(model_, options);
  ASSERT_TRUE(dp.found);
  ASSERT_TRUE(aceso.found);
  // Aceso within 15% of (or better than) the DP's predicted quality.
  EXPECT_LT(aceso.best.perf.iteration_time,
            dp.best.perf.iteration_time * 1.15);
  // ...while exploring at least 10x fewer configurations.
  EXPECT_LT(aceso.stats.configs_explored, dp.configs_explored / 10);
}

TEST_F(DpSolverTest, UniformStageMeshes) {
  const BaselineResult result = DpSolverSearch(model_, FastOptions());
  ASSERT_TRUE(result.found);
  const int p = result.best.config.num_stages();
  for (const StageConfig& stage : result.best.config.stages()) {
    EXPECT_EQ(stage.num_devices, cluster_.num_gpus() / p);
  }
}

TEST_F(DpSolverTest, SingleGpu) {
  const ClusterSpec one = ClusterSpec::SingleGpu();
  ProfileDatabase db(one);
  PerformanceModel model(&graph_, one, &db);
  const BaselineResult result = DpSolverSearch(model, FastOptions());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best.config.num_stages(), 1);
}

}  // namespace
}  // namespace aceso
