file(REMOVE_RECURSE
  "CMakeFiles/text_record_test.dir/text_record_test.cc.o"
  "CMakeFiles/text_record_test.dir/text_record_test.cc.o.d"
  "text_record_test"
  "text_record_test.pdb"
  "text_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
