// PaSE-style DP seeding of the iterative search (DESIGN.md §13).
//
// Instead of starting Algorithm 1 from the even heuristic split, DpSeedConfig
// runs a small dynamic program — the PaSE idea of exact DP over a pruned
// per-stage option space — to place the search's starting point near a good
// pipeline partition:
//
//   - stage meshes are fixed to the SplitDevicesPow2 split of the cluster
//     for the requested stage count (the same shapes the search explores);
//   - per-stage options are uniform (tp, recompute) settings, priced by
//     closed-form per-op prefix metrics against the profile database — the
//     same pricing the Exp#4 DP reference solver uses;
//   - stage boundaries are restricted to the graph's compressed
//     repeated-layer structure: inside a detected run of identical layers
//     (by op signature, the run-compression structure of DESIGN.md §12),
//     only cuts at period boundaries are considered, shrinking the DP to
//     the distinct-layer skeleton of deep models;
//   - the DP minimizes the bottleneck stage time under the Eq.1 memory cap
//     with 1F1B in-flight depth, per candidate microbatch size, and each
//     reconstructed configuration is re-priced with the full performance
//     model (those evaluations are reported so the search can charge them
//     to its exploration budget).
//
// The seed intentionally changes search trajectories (SearchOptions::
// seed_mode); goldens and the Exp#7 convergence comparison pin its effect.

#ifndef SRC_CORE_DP_SEEDER_H_
#define SRC_CORE_DP_SEEDER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/config/parallel_config.h"
#include "src/cost/perf_model.h"

namespace aceso {

// Per-op prefix metrics under a fixed (mesh, tp, recompute, mbs) stage
// setting: prefix sums over ops of per-microbatch time (fwd+bwd, +recompute
// replay, +tp collectives), stored activation bytes, and per-device
// parameter bytes. Shared pricing machinery of this seeder and the Exp#4 DP
// reference solver (src/baselines/dp_solver.cc) — any change moves both.
struct StagePrefixMetrics {
  std::vector<double> time;
  std::vector<int64_t> act;
  std::vector<int64_t> params;
  bool valid = false;
};

// Invalid (valid == false) when the setting is unconstructible, e.g. the
// microbatch does not split across the dp group.
StagePrefixMetrics BuildStagePrefix(const PerformanceModel& model, int mesh,
                                    int tp, bool recompute, int mbs);

struct DpSeedOptions {
  // Candidate microbatch sizes: powers of two dividing the global batch,
  // up to this bound (the DP reference solver's pruning).
  int max_microbatch = 16;
  // A stage may hold at most this multiple of the even share of ops.
  double max_ops_per_stage_factor = 3.0;
  // Restrict stage boundaries to repeated-layer period multiples. Off makes
  // the DP exact over all op boundaries (slower on deep models; used by
  // tests to check the compression loses nothing on uniform stacks).
  bool compress_runs = true;
  // Per-device memory budget overriding the Eq.1 cap and the re-pricing
  // verdict; <= 0 uses GpuSpec::memory_bytes. Mirrors
  // SearchOptions::memory_budget_bytes so a budget-constrained search seeds
  // within its own budget.
  int64_t memory_limit_bytes = 0;
};

struct DpSeedResult {
  ParallelConfig config;
  PerfResult perf;
  // Full-model Evaluate() calls spent pricing reconstructed candidates;
  // the search charges these to SearchStats::configs_explored.
  int64_t evaluations = 0;
};

// Seeds a `num_stages`-stage configuration. Fails (NotFound) when no DP
// solution is constructible — callers fall back to the heuristic seed.
StatusOr<DpSeedResult> DpSeedConfig(const PerformanceModel& model,
                                    int num_stages,
                                    const DpSeedOptions& options = {});

}  // namespace aceso

#endif  // SRC_CORE_DP_SEEDER_H_
