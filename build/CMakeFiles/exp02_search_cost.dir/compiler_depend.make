# Empty compiler generated dependencies file for exp02_search_cost.
# This may be replaced when dependencies are built.
