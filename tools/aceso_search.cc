// aceso_search: command-line configuration search.
//
//   aceso_search --model gpt3-1.3b --gpus 8 [--budget 5] [--max-hops 7]
//                [--out config.txt] [--seed 42] [--stages N]
//                [--telemetry events.jsonl] [--search-trace trace.json]
//
// Prints the searched configuration and its predicted performance;
// optionally writes it to a file loadable by aceso_plan / LoadConfigFromFile.
// --telemetry streams one JSON line per search event (schema: DESIGN.md §10);
// --search-trace writes a chrome://tracing view of the search itself, with
// one thread per stage-count worker and one slice per iteration.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/aceso.h"
#include "tools/cli_flags.h"
#include "tools/tool_common.h"

namespace {

struct Args {
  std::string model = "gpt3-1.3b";
  int gpus = 8;
  double budget = 2.0;
  int max_hops = 7;
  int stages = 0;  // 0 = search all stage counts
  int eval_threads = 1;
  aceso::SeedMode seed_mode = aceso::SeedMode::kHeuristic;
  uint64_t seed = 20240422;
  std::string out;
  std::string telemetry_path;
  std::string search_trace_path;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--model NAME] [--gpus N] [--budget SECONDS] "
      "[--max-hops N] [--stages N] [--eval-threads N] [--seed N] "
      "[--out FILE]\n"
      "          [--seed-mode heuristic|dp] [--telemetry FILE.jsonl] "
      "[--search-trace FILE.json]\n"
      "%s",
      argv0, aceso::tools::ZooUsageLines());
}

bool ParseArgs(int argc, char** argv, Args& args) {
  using aceso::cli::ParseInt;
  using aceso::cli::ParsePositiveDouble;
  using aceso::cli::ParsePositiveInt;
  using aceso::cli::ParseUint64;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args.model = v;
    } else if (flag == "--gpus") {
      if (!ParsePositiveInt("--gpus", next(), &args.gpus)) return false;
    } else if (flag == "--budget") {
      if (!ParsePositiveDouble("--budget", next(), &args.budget)) return false;
    } else if (flag == "--max-hops") {
      if (!ParsePositiveInt("--max-hops", next(), &args.max_hops)) return false;
    } else if (flag == "--stages") {
      if (!ParseInt("--stages", next(), &args.stages)) return false;
    } else if (flag == "--eval-threads") {
      if (!ParsePositiveInt("--eval-threads", next(), &args.eval_threads)) {
        return false;
      }
    } else if (flag == "--seed") {
      if (!ParseUint64("--seed", next(), &args.seed)) return false;
    } else if (flag == "--seed-mode") {
      int choice = 0;
      if (!aceso::cli::ParseChoice("--seed-mode", next(), {"heuristic", "dp"},
                                   &choice)) {
        return false;
      }
      args.seed_mode =
          choice == 0 ? aceso::SeedMode::kHeuristic : aceso::SeedMode::kDp;
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--telemetry") {
      const char* v = next();
      if (v == nullptr) return false;
      args.telemetry_path = v;
    } else if (flag == "--search-trace") {
      const char* v = next();
      if (v == nullptr) return false;
      args.search_trace_path = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aceso;
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    PrintUsage(argv[0]);
    return 2;
  }

  auto loaded = tools::LoadModelAndCluster(args.model, args.gpus);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  OpGraph& graph = loaded->graph;
  const ClusterSpec& cluster = loaded->cluster;
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);

  std::printf("%s on %s, budget %.1fs\n", graph.Summary().c_str(),
              cluster.ToString().c_str(), args.budget);

  // The sink outlives the search; --search-trace alone still needs the
  // in-memory ring even with no JSONL file.
  std::unique_ptr<TelemetrySink> telemetry;
  if (!args.telemetry_path.empty() || !args.search_trace_path.empty()) {
    TelemetryOptions topts;
    topts.jsonl_path = args.telemetry_path;
    telemetry = std::make_unique<TelemetrySink>(topts);
  }

  SearchOptions options;
  options.time_budget_seconds = args.budget;
  options.max_hops = args.max_hops;
  options.eval_threads = args.eval_threads;
  options.seed_mode = args.seed_mode;
  options.seed = args.seed;
  options.telemetry = telemetry.get();
  const SearchResult result =
      args.stages > 0 ? AcesoSearchForStages(model, options, args.stages)
                      : AcesoSearch(model, options);

  if (telemetry != nullptr) {
    // End-of-run counter values (cache hit rates, pool activity) go into the
    // JSONL as one tool-emitted event; the library never emits them because
    // they are thread-timing dependent (DESIGN.md §11).
    telemetry->EmitCounterSnapshot();
    const Status sink_status = telemetry->Flush();
    if (!sink_status.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", sink_status.ToString().c_str());
      return 1;
    }
    if (!args.telemetry_path.empty()) {
      std::printf("telemetry: %zu events to %s\n",
                  telemetry->events_emitted(), args.telemetry_path.c_str());
    }
    if (!args.search_trace_path.empty()) {
      const TraceDocument doc = BuildSearchTrace(telemetry->Events());
      const Status trace_status =
          WriteChromeTrace(doc, args.search_trace_path);
      if (!trace_status.ok()) {
        std::fprintf(stderr, "%s\n", trace_status.ToString().c_str());
        return 1;
      }
      std::printf("search trace written to %s\n",
                  args.search_trace_path.c_str());
    }
  }

  if (!result.found) {
    std::fprintf(stderr, "no feasible configuration found\n");
    return 1;
  }

  std::printf("\n%s\n", result.best.config.ToString(graph).c_str());
  std::printf("predicted: %s\n", result.best.perf.Summary().c_str());
  std::printf("search: %.2fs, %lld configs explored, %lld improvements\n",
              result.search_seconds,
              static_cast<long long>(result.stats.configs_explored),
              static_cast<long long>(result.stats.improvements));
  const long long lookups = static_cast<long long>(result.stats.cache_hits +
                                                   result.stats.cache_misses);
  if (lookups > 0) {
    std::printf("stage cache: %.1f%% hits (%lld/%lld lookups, %lld evictions)\n",
                100.0 * static_cast<double>(result.stats.cache_hits) /
                    static_cast<double>(lookups),
                static_cast<long long>(result.stats.cache_hits), lookups,
                static_cast<long long>(result.stats.cache_evictions));
  }

  if (!args.out.empty()) {
    const Status status =
        SaveConfigToFile(args.out, result.best.config, graph.name());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved to %s\n", args.out.c_str());
  }
  return 0;
}
