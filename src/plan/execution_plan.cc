#include "src/plan/execution_plan.h"

#include "src/plan/schedule.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace aceso {

const char* InstructionKindName(InstructionKind kind) {
  switch (kind) {
    case InstructionKind::kRecvActivation:
      return "recv_act";
    case InstructionKind::kForward:
      return "forward";
    case InstructionKind::kSendActivation:
      return "send_act";
    case InstructionKind::kRecvGradient:
      return "recv_grad";
    case InstructionKind::kBackward:
      return "backward";
    case InstructionKind::kSendGradient:
      return "send_grad";
    case InstructionKind::kGradientSync:
      return "grad_sync";
    case InstructionKind::kOptimizerStep:
      return "optimizer_step";
  }
  return "unknown";
}

std::string Instruction::ToString() const {
  std::ostringstream oss;
  oss << InstructionKindName(kind);
  if (microbatch >= 0) {
    oss << " mb=" << microbatch;
  }
  if (peer_stage >= 0) {
    oss << " peer=s" << peer_stage;
  }
  if (bytes > 0) {
    oss << " " << FormatBytes(bytes);
  }
  return oss.str();
}

ExecutionPlan ExecutionPlan::Lower(const OpGraph& graph,
                                   const ParallelConfig& config,
                                   PipelineSchedule schedule) {
  ExecutionPlan plan;
  const int p = config.num_stages();
  const int n_mb = static_cast<int>(config.NumMicrobatches(graph));
  plan.num_stages_ = p;
  plan.num_microbatches_ = n_mb;

  int first_device = 0;
  for (int s = 0; s < p; ++s) {
    const StageConfig& stage = config.stage(s);
    // Bytes crossing the stage boundaries (whole microbatch).
    const int64_t in_bytes =
        graph.op(stage.first_op).in_bytes *
        static_cast<int64_t>(config.microbatch_size());
    const int64_t out_bytes =
        graph.op(stage.end_op() - 1).out_bytes *
        static_cast<int64_t>(config.microbatch_size());

    // Per-device gradient-sync payload: sum of data-parallel op parameters.
    int64_t sync_bytes = 0;
    int modal_tp = 1;
    for (int i = 0; i < stage.num_ops; ++i) {
      const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
      modal_tp = std::max(modal_tp, setting.tp);
      if (setting.dp > 1) {
        const Operator& op = graph.op(stage.first_op + i);
        sync_bytes += setting.tp > 1 &&
                              op.tp_class == TpClass::kPartitioned
                          ? op.param_bytes / setting.tp
                          : op.param_bytes;
      }
    }

    const auto order = LocalScheduleOrder(schedule, s, p, n_mb);
    for (int local = 0; local < stage.num_devices; ++local) {
      DeviceProgram program;
      program.device = first_device + local;
      program.stage = s;
      program.tp_rank = local % modal_tp;
      program.dp_rank = local / modal_tp;
      for (const auto& [is_fwd, m] : order) {
        if (is_fwd) {
          if (s > 0) {
            program.instructions.push_back(Instruction{
                InstructionKind::kRecvActivation, m, s - 1, in_bytes});
          }
          program.instructions.push_back(
              Instruction{InstructionKind::kForward, m, -1, 0});
          if (s < p - 1) {
            program.instructions.push_back(Instruction{
                InstructionKind::kSendActivation, m, s + 1, out_bytes});
          }
        } else {
          if (s < p - 1) {
            program.instructions.push_back(Instruction{
                InstructionKind::kRecvGradient, m, s + 1, out_bytes});
          }
          program.instructions.push_back(
              Instruction{InstructionKind::kBackward, m, -1, 0});
          if (s > 0) {
            program.instructions.push_back(Instruction{
                InstructionKind::kSendGradient, m, s - 1, in_bytes});
          }
        }
      }
      if (sync_bytes > 0) {
        program.instructions.push_back(
            Instruction{InstructionKind::kGradientSync, -1, -1, sync_bytes});
      }
      program.instructions.push_back(
          Instruction{InstructionKind::kOptimizerStep, -1, -1, 0});
      plan.programs_.push_back(std::move(program));
    }
    first_device += stage.num_devices;
  }
  return plan;
}

Status ExecutionPlan::Verify() const {
  // Counts of send/recv payload per (from_stage, to_stage, microbatch,
  // direction) on one representative device per stage.
  std::map<std::tuple<int, int, int, int>, int64_t> sends;
  std::map<std::tuple<int, int, int, int>, int64_t> recvs;
  std::map<int, size_t> stage_instruction_count;

  for (const DeviceProgram& program : programs_) {
    // All devices of one stage run identical instruction streams.
    auto [it, inserted] = stage_instruction_count.emplace(
        program.stage, program.instructions.size());
    if (!inserted && it->second != program.instructions.size()) {
      return Internal("devices of stage " + std::to_string(program.stage) +
                      " disagree on instruction count");
    }

    std::vector<bool> fwd_seen(static_cast<size_t>(num_microbatches_), false);
    for (const Instruction& inst : program.instructions) {
      switch (inst.kind) {
        case InstructionKind::kForward:
          fwd_seen[static_cast<size_t>(inst.microbatch)] = true;
          break;
        case InstructionKind::kBackward:
          if (!fwd_seen[static_cast<size_t>(inst.microbatch)]) {
            return Internal("backward before forward for microbatch " +
                            std::to_string(inst.microbatch) + " on device " +
                            std::to_string(program.device));
          }
          break;
        case InstructionKind::kSendActivation:
        case InstructionKind::kSendGradient:
          sends[{program.stage, inst.peer_stage, inst.microbatch,
                 static_cast<int>(inst.kind)}] = inst.bytes;
          break;
        case InstructionKind::kRecvActivation:
        case InstructionKind::kRecvGradient:
          recvs[{inst.peer_stage, program.stage, inst.microbatch,
                 static_cast<int>(inst.kind)}] = inst.bytes;
          break;
        default:
          break;
      }
    }
  }

  // Match sends to receives: a send_act from s->s+1 pairs with a recv_act at
  // s+1 from s; a send_grad from s->s-1 pairs with a recv_grad at s-1 from s.
  for (const auto& [key, bytes] : sends) {
    const auto [from, to, mb, kind] = key;
    const int recv_kind =
        kind == static_cast<int>(InstructionKind::kSendActivation)
            ? static_cast<int>(InstructionKind::kRecvActivation)
            : static_cast<int>(InstructionKind::kRecvGradient);
    auto it = recvs.find({from, to, mb, recv_kind});
    if (it == recvs.end()) {
      return Internal("unmatched send from stage " + std::to_string(from) +
                      " to " + std::to_string(to) + " mb " +
                      std::to_string(mb));
    }
    if (it->second != bytes) {
      return Internal("send/recv byte mismatch between stages " +
                      std::to_string(from) + " and " + std::to_string(to));
    }
  }
  return OkStatus();
}

std::string ExecutionPlan::Summary() const {
  std::ostringstream oss;
  std::map<int, std::tuple<int, int64_t, int64_t>> per_stage;  // devices, comm, sync
  for (const DeviceProgram& program : programs_) {
    auto& [devices, comm, sync] = per_stage[program.stage];
    ++devices;
    if (devices == 1) {
      for (const Instruction& inst : program.instructions) {
        if (inst.kind == InstructionKind::kSendActivation ||
            inst.kind == InstructionKind::kSendGradient) {
          comm += inst.bytes;
        } else if (inst.kind == InstructionKind::kGradientSync) {
          sync += inst.bytes;
        }
      }
    }
  }
  oss << "execution plan: " << num_devices() << " devices, " << num_stages_
      << " stages, " << num_microbatches_ << " microbatches/iteration\n";
  for (const auto& [stage, info] : per_stage) {
    const auto& [devices, comm, sync] = info;
    oss << "  stage " << stage << ": " << devices << " devices, p2p "
        << FormatBytes(comm) << "/iter/device, grad sync "
        << FormatBytes(sync) << "\n";
  }
  return oss.str();
}

std::string ExecutionPlan::DumpDevice(int device, int max_instructions) const {
  const DeviceProgram& program = programs_.at(static_cast<size_t>(device));
  std::ostringstream oss;
  oss << "device " << program.device << " (stage " << program.stage
      << ", tp_rank " << program.tp_rank << ", dp_rank " << program.dp_rank
      << "): " << program.instructions.size() << " instructions\n";
  int count = 0;
  for (const Instruction& inst : program.instructions) {
    if (count++ >= max_instructions) {
      oss << "  ... ("
          << (program.instructions.size() -
              static_cast<size_t>(max_instructions))
          << " more)\n";
      break;
    }
    oss << "  " << inst.ToString() << "\n";
  }
  return oss.str();
}

}  // namespace aceso
