file(REMOVE_RECURSE
  "CMakeFiles/aceso_hw.dir/cluster.cc.o"
  "CMakeFiles/aceso_hw.dir/cluster.cc.o.d"
  "CMakeFiles/aceso_hw.dir/gpu_spec.cc.o"
  "CMakeFiles/aceso_hw.dir/gpu_spec.cc.o.d"
  "CMakeFiles/aceso_hw.dir/interconnect.cc.o"
  "CMakeFiles/aceso_hw.dir/interconnect.cc.o.d"
  "libaceso_hw.a"
  "libaceso_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
