#include "src/baselines/megatron.h"

#include <gtest/gtest.h>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class MegatronTest : public ::testing::Test {
 protected:
  MegatronTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(8)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(MegatronTest, MakeConfigBasics) {
  auto config = MakeMegatronConfig(graph_, cluster_, 2, 2, 2, 4, false);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->num_stages(), 2);
  EXPECT_EQ(config->TotalDevices(), 8);
  EXPECT_TRUE(config->Validate(graph_, cluster_).ok());
}

TEST_F(MegatronTest, ConfigIsGloballyUniform) {
  auto config = MakeMegatronConfig(graph_, cluster_, 2, 2, 2, 4, true);
  ASSERT_TRUE(config.ok());
  for (const StageConfig& stage : config->stages()) {
    EXPECT_EQ(stage.num_devices, 4);
    for (const OpParallel& setting : stage.ops) {
      EXPECT_TRUE(setting.recompute);
      EXPECT_LE(setting.tp, 2);
    }
  }
}

TEST_F(MegatronTest, RejectsMismatchedDeviceProduct) {
  EXPECT_FALSE(MakeMegatronConfig(graph_, cluster_, 2, 2, 4, 4, false).ok());
}

TEST_F(MegatronTest, RejectsCrossNodeTensorParallelism) {
  const ClusterSpec multi = ClusterSpec::WithGpuCount(16);
  EXPECT_FALSE(MakeMegatronConfig(graph_, multi, 16, 1, 1, 1, false).ok());
}

TEST_F(MegatronTest, RejectsDpNotDividingMicrobatch) {
  EXPECT_FALSE(MakeMegatronConfig(graph_, cluster_, 1, 8, 1, 4, false).ok());
}

TEST_F(MegatronTest, EvenOpSplitAcrossStages) {
  auto config = MakeMegatronConfig(graph_, cluster_, 1, 1, 8, 1, false);
  ASSERT_TRUE(config.ok());
  int min_ops = graph_.num_ops();
  int max_ops = 0;
  for (const StageConfig& stage : config->stages()) {
    min_ops = std::min(min_ops, stage.num_ops);
    max_ops = std::max(max_ops, stage.num_ops);
  }
  EXPECT_LE(max_ops - min_ops, 1);
}

TEST_F(MegatronTest, GridSearchFindsFeasibleConfig) {
  const BaselineResult result = MegatronGridSearch(model_);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.best.perf.oom);
  EXPECT_GT(result.configs_explored, 10);
  EXPECT_TRUE(result.best.config.Validate(graph_, cluster_).ok());
}

TEST_F(MegatronTest, GridSearchIsFast) {
  const BaselineResult result = MegatronGridSearch(model_);
  EXPECT_LT(result.search_seconds, 30.0);
  EXPECT_EQ(result.simulated_profile_seconds, 0.0);
}

TEST_F(MegatronTest, GridSearchOnSingleGpu) {
  const ClusterSpec one = ClusterSpec::SingleGpu();
  ProfileDatabase db(one);
  PerformanceModel model(&graph_, one, &db);
  const BaselineResult result = MegatronGridSearch(model);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best.config.num_stages(), 1);
}

}  // namespace
}  // namespace aceso
