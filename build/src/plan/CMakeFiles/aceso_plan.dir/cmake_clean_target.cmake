file(REMOVE_RECURSE
  "libaceso_plan.a"
)
