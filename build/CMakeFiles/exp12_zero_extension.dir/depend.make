# Empty dependencies file for exp12_zero_extension.
# This may be replaced when dependencies are built.
