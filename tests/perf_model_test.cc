#include "src/cost/perf_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class PerfModelTest : public ::testing::Test {
 protected:
  PerfModelTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(8)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  ParallelConfig Even(int stages, int mbs = 1) {
    auto config = MakeEvenConfig(graph_, cluster_, stages, mbs);
    EXPECT_TRUE(config.ok()) << config.status().ToString();
    return *std::move(config);
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(PerfModelTest, ProducesPositiveTimes) {
  const PerfResult perf = model_.Evaluate(Even(4));
  EXPECT_GT(perf.iteration_time, 0.0);
  ASSERT_EQ(perf.stages.size(), 4u);
  for (const StageUsage& s : perf.stages) {
    EXPECT_GT(s.fwd_time, 0.0);
    EXPECT_GT(s.bwd_time, s.fwd_time);  // backward is ~2x forward
    EXPECT_GT(s.memory_bytes, 0);
  }
}

TEST_F(PerfModelTest, EvaluationCounterAdvances) {
  model_.ResetEvaluationCount();
  const ParallelConfig config = Even(2);
  model_.Evaluate(config);
  model_.Evaluate(config);
  EXPECT_EQ(model_.NumEvaluations(), 2);
}

TEST_F(PerfModelTest, DeterministicEvaluation) {
  const ParallelConfig config = Even(4);
  const PerfResult a = model_.Evaluate(config);
  const PerfResult b = model_.Evaluate(config);
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  EXPECT_EQ(a.MaxMemory(), b.MaxMemory());
}

TEST_F(PerfModelTest, IterationTimeIsMaxStageTime) {
  const PerfResult perf = model_.Evaluate(Even(4));
  double max_stage = 0.0;
  for (const StageUsage& s : perf.stages) {
    max_stage = std::max(max_stage, s.stage_time);
  }
  EXPECT_DOUBLE_EQ(perf.iteration_time, max_stage);
  EXPECT_DOUBLE_EQ(
      perf.stages[static_cast<size_t>(perf.slowest_stage)].stage_time,
      max_stage);
}

TEST_F(PerfModelTest, Eq2Decomposition) {
  // stage_time = warmup + steady + cooldown + dp_sync, with warmup equal to
  // the upstream forward prefix.
  const ParallelConfig config = Even(4);
  const PerfResult perf = model_.Evaluate(config);
  double fwd_prefix = 0.0;
  double bwd_prefix = 0.0;
  const int64_t n_mb = config.NumMicrobatches(graph_);
  for (const StageUsage& s : perf.stages) {
    EXPECT_DOUBLE_EQ(s.warmup_time, fwd_prefix);
    EXPECT_DOUBLE_EQ(s.cooldown_time, bwd_prefix);
    EXPECT_DOUBLE_EQ(s.steady_time,
                     static_cast<double>(n_mb) * (s.fwd_time + s.bwd_time));
    EXPECT_DOUBLE_EQ(s.stage_time, s.warmup_time + s.steady_time +
                                       s.cooldown_time + s.dp_sync_time);
    fwd_prefix += s.fwd_time;
    bwd_prefix += s.bwd_time;
  }
}

TEST_F(PerfModelTest, Eq1MemoryDecomposition) {
  const ParallelConfig config = Even(4);
  const PerfResult perf = model_.Evaluate(config);
  const int p = config.num_stages();
  for (int s = 0; s < p; ++s) {
    const StageUsage& u = perf.stages[static_cast<size_t>(s)];
    EXPECT_EQ(u.memory_bytes,
              u.param_bytes + u.optimizer_bytes +
                  u.activation_bytes_per_mb * (p - s) + u.reserved_bytes);
  }
}

TEST_F(PerfModelTest, EarlierStagesHoldMoreActivationCopies) {
  // With a balanced partition, 1F1B makes stage 0 the memory-heaviest
  // (paper §3.1 / Figure 3).
  const PerfResult perf = model_.Evaluate(Even(4));
  EXPECT_GT(perf.stages[0].activation_bytes_per_mb * 4,
            perf.stages[3].activation_bytes_per_mb * 1);
}

TEST_F(PerfModelTest, OptimizerMultiplierByPrecision) {
  EXPECT_DOUBLE_EQ(OptimizerMultiplier(Precision::kFp16), 7.0);
  EXPECT_DOUBLE_EQ(OptimizerMultiplier(Precision::kFp32), 3.0);
}

TEST_F(PerfModelTest, RecomputeTradesTimeForMemory) {
  ParallelConfig base = Even(2, 4);
  ParallelConfig recomputed = base;
  for (int i = 0; i < graph_.num_ops(); ++i) {
    recomputed.MutableOpSettings(i).recompute = true;
  }
  const PerfResult perf_base = model_.Evaluate(base);
  const PerfResult perf_rc = model_.Evaluate(recomputed);
  EXPECT_LT(perf_rc.MaxMemory(), perf_base.MaxMemory());
  EXPECT_GT(perf_rc.iteration_time, perf_base.iteration_time);
  EXPECT_GT(perf_rc.stages[0].recompute_time, 0.0);
}

TEST_F(PerfModelTest, LargerMicrobatchImprovesComputeEfficiency) {
  const PerfResult mbs1 = model_.Evaluate(Even(2, 1));
  const PerfResult mbs8 = model_.Evaluate(Even(2, 8));
  // Total compute time over the iteration shrinks with bigger kernels.
  const auto total_comp = [](const PerfResult& r, int64_t n_mb) {
    double t = 0.0;
    for (const StageUsage& s : r.stages) {
      t += s.comp_time * static_cast<double>(n_mb);
    }
    return t;
  };
  EXPECT_LT(total_comp(mbs8, 128), total_comp(mbs1, 1024));
  // ... but holds more memory per in-flight microbatch.
  EXPECT_GT(mbs8.stages[0].activation_bytes_per_mb,
            mbs1.stages[0].activation_bytes_per_mb);
}

TEST_F(PerfModelTest, TensorParallelismAddsCommunication) {
  // One stage, all devices: tp=8 has tp collectives, dp=8 has grad sync.
  ParallelConfig tp_config = Even(1, 8);
  tp_config.MutableStage(0).SetUniformParallelism(graph_, 8, 1);
  ASSERT_TRUE(tp_config.Validate(graph_, cluster_).ok());
  const PerfResult perf = model_.Evaluate(tp_config);
  EXPECT_GT(perf.stages[0].comm_time, 0.0);
}

TEST_F(PerfModelTest, DataParallelismAddsGradientSync) {
  ParallelConfig dp_config = Even(1, 8);
  dp_config.MutableStage(0).SetUniformParallelism(graph_, 1, 8);
  ASSERT_TRUE(dp_config.Validate(graph_, cluster_).ok());
  const PerfResult perf = model_.Evaluate(dp_config);
  EXPECT_GT(perf.stages[0].dp_sync_time, 0.0);
}

TEST_F(PerfModelTest, TpShardsParameterMemory) {
  ParallelConfig tp_config = Even(1, 8);
  tp_config.MutableStage(0).SetUniformParallelism(graph_, 8, 1);
  ParallelConfig dp_config = Even(1, 8);
  dp_config.MutableStage(0).SetUniformParallelism(graph_, 1, 8);
  const PerfResult tp = model_.Evaluate(tp_config);
  const PerfResult dp = model_.Evaluate(dp_config);
  // dp replicates parameters; tp shards the big matmuls.
  EXPECT_LT(tp.stages[0].param_bytes, dp.stages[0].param_bytes);
}

TEST_F(PerfModelTest, OomFlagSetWhenMemoryExceedsCapacity) {
  // Shrink the device memory until the config cannot fit.
  ClusterSpec tiny = cluster_;
  tiny.gpu.memory_bytes = 1 * kGiB;
  ProfileDatabase tiny_db(tiny);
  PerformanceModel tiny_model(&graph_, tiny, &tiny_db);
  const PerfResult perf = tiny_model.Evaluate(Even(1, 8));
  EXPECT_TRUE(perf.oom);
  EXPECT_GT(perf.MaxMemory(), perf.memory_limit);
}

TEST_F(PerfModelTest, BetterThanOrdersFeasibleBeforeOom) {
  PerfResult feasible;
  feasible.oom = false;
  feasible.iteration_time = 100.0;
  PerfResult oom;
  oom.oom = true;
  oom.iteration_time = 1.0;
  EXPECT_TRUE(feasible.BetterThan(oom));
  EXPECT_FALSE(oom.BetterThan(feasible));
}

TEST_F(PerfModelTest, StageWalkMatchesEvaluateAggregates) {
  const ParallelConfig config = Even(3, 2);
  const PerfResult perf = model_.Evaluate(config);
  for (int s = 0; s < 3; ++s) {
    const StageWalk walk = model_.WalkStage(config, s);
    double fwd = walk.p2p_fwd;
    int64_t params = 0;
    for (const OpBreakdown& op : walk.ops) {
      fwd += op.fwd_kernel + op.fwd_comm;
      params += op.param_bytes;
    }
    EXPECT_NEAR(fwd, perf.stages[static_cast<size_t>(s)].fwd_time, 1e-12);
    EXPECT_EQ(params, perf.stages[static_cast<size_t>(s)].param_bytes);
  }
}

TEST_F(PerfModelTest, ComputeStageCostMatchesDirectWalkBitExactly) {
  const ParallelConfig config = Even(3, 2);
  for (int s = 0; s < 3; ++s) {
    const StageCost direct = AggregateStageCost(model_.WalkStage(config, s));
    const StageCost fast = model_.ComputeStageCost(config, s);
    EXPECT_EQ(fast.fwd_time, direct.fwd_time) << s;
    EXPECT_EQ(fast.bwd_time, direct.bwd_time) << s;
    EXPECT_EQ(fast.comp_time, direct.comp_time) << s;
    EXPECT_EQ(fast.comm_time, direct.comm_time) << s;
    EXPECT_EQ(fast.recompute_time, direct.recompute_time) << s;
    EXPECT_EQ(fast.dp_sync_time, direct.dp_sync_time) << s;
    EXPECT_EQ(fast.param_bytes, direct.param_bytes) << s;
    EXPECT_EQ(fast.optimizer_bytes, direct.optimizer_bytes) << s;
    EXPECT_EQ(fast.activation_bytes_per_mb, direct.activation_bytes_per_mb)
        << s;
    EXPECT_EQ(fast.reserved_bytes, direct.reserved_bytes) << s;
  }
}

TEST_F(PerfModelTest, RunCompressionCompressesDeepRepeatedLayers) {
  // deepnet-256 is 256 identical transformer layers: inside one stage the
  // (semantic word, layout-state) cycle repeats, so a cold ComputeStageCost
  // should derive roughly one period's worth of op contexts — not the whole
  // stage — and still match the direct walk bit for bit.
  const OpGraph graph = models::DeepTransformer(256);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  auto config = MakeEvenConfig(graph, cluster, 4, 1);
  ASSERT_TRUE(config.ok());
  for (int s = 0; s < 4; ++s) {
    const StageCost direct = AggregateStageCost(model.WalkStage(*config, s));
    const OpMemoStats before = model.op_memo().stats();
    const StageCost fast = model.ComputeStageCost(*config, s);
    const OpMemoStats delta = model.op_memo().stats() - before;
    EXPECT_EQ(fast.fwd_time, direct.fwd_time) << s;
    EXPECT_EQ(fast.bwd_time, direct.bwd_time) << s;
    EXPECT_EQ(fast.activation_bytes_per_mb, direct.activation_bytes_per_mb)
        << s;
    EXPECT_EQ(fast.optimizer_bytes, direct.optimizer_bytes) << s;
    EXPECT_EQ(fast.reserved_bytes, direct.reserved_bytes) << s;
    // Run compression kept the per-op derivations to a small multiple of
    // one repeating period (a deepnet stage here walks hundreds of ops).
    const int64_t derived = delta.misses;
    EXPECT_LT(derived, 64) << "stage " << s;
  }
}

TEST_F(PerfModelTest, OpMemoServesRepeatedStageWalks) {
  PerformanceModel cacheless(&graph_, cluster_, &db_,
                             StageCacheOptions{/*enabled=*/false});
  const ParallelConfig config = Even(2, 2);
  const StageCost first = cacheless.ComputeStageCost(config, 0);
  const OpMemoStats before = cacheless.op_memo().stats();
  const StageCost second = cacheless.ComputeStageCost(config, 0);
  const OpMemoStats delta = cacheless.op_memo().stats() - before;
  EXPECT_EQ(first.fwd_time, second.fwd_time);
  EXPECT_EQ(first.optimizer_bytes, second.optimizer_bytes);
  EXPECT_GT(delta.hits, 0);
  EXPECT_EQ(delta.misses, 0);  // every context was memoized by the first walk
}

TEST_F(PerfModelTest, TimeShareSumsToOne) {
  const PerfResult perf = model_.Evaluate(Even(2));
  for (const StageUsage& s : perf.stages) {
    const double total = s.TimeShare(Resource::kComputation) +
                         s.TimeShare(Resource::kCommunication);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

// Property sweep: for every model family and stage count, the evaluation is
// finite, positive, and internally consistent.
class PerfSweepTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PerfSweepTest, EvaluationConsistent) {
  const auto& [name, stages] = GetParam();
  auto graph = models::BuildByName(name);
  ASSERT_TRUE(graph.ok());
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  PerformanceModel model(&*graph, cluster, &db);
  auto config = MakeEvenConfig(*graph, cluster, stages, 1);
  ASSERT_TRUE(config.ok());
  const PerfResult perf = model.Evaluate(*config);
  EXPECT_TRUE(std::isfinite(perf.iteration_time));
  EXPECT_GT(perf.iteration_time, 0.0);
  EXPECT_EQ(perf.stages.size(), static_cast<size_t>(stages));
  for (const StageUsage& s : perf.stages) {
    EXPECT_GE(s.comm_time, 0.0);
    EXPECT_GT(s.comp_time, 0.0);
    EXPECT_GT(s.memory_bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PerfSweepTest,
    ::testing::Combine(::testing::Values("gpt3-0.35b", "t5-0.77b",
                                         "wresnet-0.5b", "deepnet-16"),
                       ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace aceso
