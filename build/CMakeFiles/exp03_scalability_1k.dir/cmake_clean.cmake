file(REMOVE_RECURSE
  "CMakeFiles/exp03_scalability_1k.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp03_scalability_1k.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp03_scalability_1k.dir/bench/exp03_scalability_1k.cc.o"
  "CMakeFiles/exp03_scalability_1k.dir/bench/exp03_scalability_1k.cc.o.d"
  "bench/exp03_scalability_1k"
  "bench/exp03_scalability_1k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp03_scalability_1k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
