// Analytical cost models for the communication primitives parallel DNN
// training uses:
//
//  * point-to-point activation transfer between adjacent pipeline stages,
//  * ring all-reduce for data-parallel gradient sync and Megatron-style
//    tensor-parallel activation reduction,
//  * all-gather / reduce-scatter for resharding between ops whose (tp, dp)
//    assignment differs inside a stage (§4.2 "flexible combination").
//
// Ring collective cost follows the standard alpha-beta model: an n-way ring
// all-reduce moves 2(n-1)/n of the buffer through the slowest link and pays
// (n-1) hop latencies per phase.

#ifndef SRC_HW_INTERCONNECT_H_
#define SRC_HW_INTERCONNECT_H_

#include <cstdint>

#include "src/hw/cluster.h"

namespace aceso {

enum class CollectiveKind {
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kBroadcast,
};

const char* CollectiveKindName(CollectiveKind kind);

class InterconnectModel {
 public:
  explicit InterconnectModel(const ClusterSpec& cluster) : cluster_(cluster) {}

  // Time for one point-to-point transfer of `bytes`. `cross_node` selects the
  // IB path instead of NVLink.
  double P2PTime(int64_t bytes, bool cross_node) const;

  // Time for a collective over `domain` on a buffer of `bytes` (the full,
  // unsharded buffer size). Domains of size 1 cost zero.
  double CollectiveTime(CollectiveKind kind, int64_t bytes,
                        const CommDomain& domain) const;

  const ClusterSpec& cluster() const { return cluster_; }

 private:
  // Bandwidth (bytes/s) and per-hop latency (s) of the slowest link used by a
  // ring over `domain`.
  double RingBandwidth(const CommDomain& domain) const;
  double RingLatency(const CommDomain& domain) const;

  ClusterSpec cluster_;
};

}  // namespace aceso

#endif  // SRC_HW_INTERCONNECT_H_
