#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace aceso {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, WaitCanBeReused) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(pool, 64, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not run"; });
}

}  // namespace
}  // namespace aceso
