file(REMOVE_RECURSE
  "CMakeFiles/aceso_profile.dir/profile_db.cc.o"
  "CMakeFiles/aceso_profile.dir/profile_db.cc.o.d"
  "libaceso_profile.a"
  "libaceso_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
