# Empty compiler generated dependencies file for aceso_runtime.
# This may be replaced when dependencies are built.
