file(REMOVE_RECURSE
  "CMakeFiles/parallel_config_test.dir/parallel_config_test.cc.o"
  "CMakeFiles/parallel_config_test.dir/parallel_config_test.cc.o.d"
  "parallel_config_test"
  "parallel_config_test.pdb"
  "parallel_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
