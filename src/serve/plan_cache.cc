#include "src/serve/plan_cache.h"

#include <utility>

namespace aceso {
namespace serve {

std::optional<CachedPlan> PlanCache::Get(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->plan;
}

void PlanCache::Put(uint64_t key, CachedPlan plan) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    it->second->derived.clear();
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan), {}});
  index_[key] = lru_.begin();
  ++inserts_;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const std::string> PlanCache::GetDerived(uint64_t key,
                                                         uint64_t variant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  for (const auto& [v, payload] : it->second->derived) {
    if (v == variant) {
      ++derived_hits_;
      return payload;
    }
  }
  ++derived_misses_;
  return nullptr;
}

void PlanCache::PutDerived(uint64_t key, uint64_t variant,
                           std::shared_ptr<const std::string> payload) {
  if (capacity_ == 0 || payload == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return;  // entry evicted between render and publish — nothing to attach
  }
  auto& derived = it->second->derived;
  for (auto& [v, existing] : derived) {
    if (v == variant) {
      existing = std::move(payload);
      return;
    }
  }
  if (derived.size() >= kMaxDerivedPerEntry) {
    derived.erase(derived.begin());
  }
  derived.emplace_back(variant, std::move(payload));
  ++derived_inserts_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.evictions = evictions_;
  s.derived_hits = derived_hits_;
  s.derived_misses = derived_misses_;
  s.derived_inserts = derived_inserts_;
  return s;
}

}  // namespace serve
}  // namespace aceso
