// Warm-seed study (DESIGN.md §17): neighbor-seeded incremental planning vs
// searching from scratch, across a perturbation ladder.
//
// The claim: when a request is a small perturbation of an already-planned
// workload (a few layers added or removed, a different device count, a
// shifted memory budget), adapting the cached neighbor's plan into the
// search's starting point reaches the from-scratch search's final quality
// with >= 5x fewer model evaluations on most perturbations — the cache miss
// costs a fraction of a cold search at equal answer quality.
//
//   exp14_warm_seed [--quick] [--out BENCH_warm_seed.json]
//
// Ladder: one base search plans deepnet-L on 8 GPUs at device capacity;
// each scenario perturbs one axis (+layers, -layers, +devices, halved
// memory budget), adapts the base plan (AdaptSeedConfig), and runs a seeded
// and an unseeded search at the same deterministic evaluation budget. The
// score is evals-to-match: the evaluation count at which each search first
// reaches the unseeded run's final iteration time (the convergence trend's
// deterministic x-axis). A scenario passes when the seeded search matches
// that quality with >= 5x fewer evaluations; the experiment passes with
// >= 3 of 4 scenarios.
//
// --out writes a google-benchmark-format report (consumed by
// tools/check_bench_regression.py against bench/baselines/
// exp14_warm_seed_baseline.json): per scenario the seeded evals-to-match
// (deterministic — drift means the adaptation or search changed, not noise)
// plus the two search wall times.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace {

double WallSeconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Quality band for evals-to-match: a search "matches" the reference final
// once it is within 1% of it — the usual time-to-quality convention, applied
// identically to both the seeded and the unseeded trajectory.
constexpr double kQualityBand = 1.01;

// The deterministic x-axis score: the `evaluations` value of the first
// feasible convergence point at or below `target_time`, or -1 when the
// search never reached that quality.
int64_t EvalsToMatch(const aceso::SearchResult& result, double target_time) {
  for (const aceso::ConvergencePoint& point : result.convergence) {
    if (point.feasible && point.best_iteration_time <= target_time) {
      return point.evaluations;
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aceso;
  using namespace aceso::bench;

  bool quick = QuickMode();
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  PrintHeader("Warm seed: adapted-neighbor starts vs from-scratch search",
              "seeding a perturbed request's search with its neighbor's "
              "adapted plan reaches the from-scratch final quality with "
              ">=5x fewer evaluations on >=3 of 4 perturbations");

  // Base workload: deepnet-L is depth-parameterized at fixed width, so the
  // layer perturbations stay inside one model family (the similarity
  // index's ModelFamilyFingerprint bucket).
  const int base_layers = quick ? 16 : 32;
  const int base_gpus = 8;
  const int stages = 4;
  // The cached neighbor is a *converged* plan — the serving layer only
  // caches search finals — so the base search gets the same budget the
  // perturbed requests do.
  const int64_t base_evals = quick ? 1200 : 2400;
  const int64_t target_evals = quick ? 1200 : 2400;

  auto base_graph = models::BuildByName(
      "deepnet-" + std::to_string(base_layers));
  ACESO_CHECK(base_graph.ok());
  const ClusterSpec base_cluster = ClusterSpec::WithGpuCount(base_gpus);
  ProfileDatabase base_db(base_cluster);
  PerformanceModel base_model(&*base_graph, base_cluster, &base_db);

  auto make_options = [&](int64_t evals, int64_t memory_budget) {
    SearchOptions options;
    options.time_budget_seconds = 1e9;  // evaluation-budget limited
    options.max_evaluations = evals;
    options.seed = 20240422;
    options.memory_budget_bytes = memory_budget;
    return options;
  };

  // One base search; its best plan is what the plan cache would hold when
  // the perturbed requests miss.
  const SearchResult base_result =
      AcesoSearchForStages(base_model, make_options(base_evals, 0), stages);
  if (!base_result.found) {
    std::fprintf(stderr, "base search found no plan\n");
    return 1;
  }
  std::printf("base: deepnet-%d @ %d GPUs, %lld evals -> %.3fs/iter\n\n",
              base_layers, base_gpus,
              static_cast<long long>(base_evals),
              base_result.best.perf.iteration_time);

  struct Scenario {
    std::string name;
    int layers;
    int gpus;
    int64_t memory_budget;  // 0 = device capacity
  };
  const int layer_step = 4;
  const std::vector<Scenario> scenarios = {
      {"plus_layers", base_layers + layer_step, base_gpus, 0},
      {"minus_layers", base_layers - layer_step, base_gpus, 0},
      {"plus_devices", base_layers, base_gpus * 2, 0},
      {"half_budget", base_layers, base_gpus,
       base_cluster.gpu.memory_bytes / 2},
  };

  struct Outcome {
    std::string name;
    int64_t unseeded_evals = -1;
    int64_t seeded_evals = -1;
    double ratio = 0.0;
    double unseeded_seconds = 0.0;
    double seeded_seconds = 0.0;
    bool pass = false;
  };
  std::vector<Outcome> outcomes;

  TablePrinter table({"scenario", "seed start", "unseeded final",
                      "seeded final", "evals (unseeded)", "evals (seeded)",
                      "ratio", "verdict"});
  for (const Scenario& scenario : scenarios) {
    Outcome outcome;
    outcome.name = scenario.name;

    auto graph = models::BuildByName(
        "deepnet-" + std::to_string(scenario.layers));
    ACESO_CHECK(graph.ok());
    const ClusterSpec cluster = ClusterSpec::WithGpuCount(scenario.gpus);
    ProfileDatabase db(cluster);
    PerformanceModel model(&*graph, cluster, &db);

    // From-scratch reference at the full target budget.
    const SearchOptions options =
        make_options(target_evals, scenario.memory_budget);
    const auto unseeded_start = std::chrono::steady_clock::now();
    const SearchResult unseeded = AcesoSearchForStages(model, options, stages);
    outcome.unseeded_seconds = WallSeconds(unseeded_start);
    if (!unseeded.found) {
      table.AddRow(
          {scenario.name, "-", "not found", "-", "-", "-", "-", "SKIP"});
      outcomes.push_back(outcome);
      continue;
    }
    const double final_time = unseeded.best.perf.iteration_time;
    const double match_time = final_time * kQualityBand;
    outcome.unseeded_evals = EvalsToMatch(unseeded, match_time);

    // Adapt the base plan to this scenario (what the serving layer does on
    // a neighbor-seeded miss), then search from it at the same budget.
    SeedAdaptOptions adapt_options;
    adapt_options.memory_limit_bytes = scenario.memory_budget;
    auto adapted = AdaptSeedConfig(model, base_result.best.config,
                                   adapt_options);
    if (!adapted.ok()) {
      table.AddRow({scenario.name, "no adapt", FormatDouble(final_time, 3),
                    "-", "-", "-", "-", "FAIL"});
      outcomes.push_back(outcome);
      continue;
    }
    const std::string seed_start =
        FormatDouble(adapted->perf.iteration_time, 3) +
        (adapted->perf.oom ? " (oom)" : "");
    SearchOptions seeded_options = options;
    seeded_options.seed_mode = SeedMode::kConfig;
    seeded_options.seed_config =
        std::make_shared<const ParallelConfig>(std::move(adapted->config));
    const auto seeded_start = std::chrono::steady_clock::now();
    const SearchResult seeded =
        AcesoSearchForStages(model, seeded_options, stages);
    outcome.seeded_seconds = WallSeconds(seeded_start);
    outcome.seeded_evals =
        seeded.found ? EvalsToMatch(seeded, match_time) : -1;

    // Pass: the seeded search reached the unseeded final quality, with
    // >= 5x fewer evaluations.
    if (outcome.unseeded_evals > 0 && outcome.seeded_evals > 0) {
      outcome.ratio = static_cast<double>(outcome.unseeded_evals) /
                      static_cast<double>(outcome.seeded_evals);
      outcome.pass = outcome.ratio >= 5.0;
    }
    table.AddRow(
        {scenario.name, seed_start, FormatDouble(final_time, 3),
         seeded.found ? FormatDouble(seeded.best.perf.iteration_time, 3)
                      : "not found",
         std::to_string(outcome.unseeded_evals),
         std::to_string(outcome.seeded_evals),
         outcome.ratio > 0 ? FormatDouble(outcome.ratio, 1) : "-",
         outcome.pass ? "PASS" : "FAIL"});
    outcomes.push_back(outcome);
  }
  table.Print(std::cout);

  int passed = 0;
  for (const Outcome& outcome : outcomes) {
    passed += outcome.pass ? 1 : 0;
  }
  const bool pass = passed >= 3;
  std::printf("\n%d of %zu scenarios reached >=5x fewer evaluations -> %s\n",
              passed, outcomes.size(), pass ? "PASS" : "FAIL");

  if (!out_path.empty()) {
    std::string json = "{\"context\":{\"executable\":\"exp14_warm_seed\"},";
    json += "\"benchmarks\":[";
    bool first = true;
    for (const Outcome& outcome : outcomes) {
      // Deterministic quality signal: evals the seeded search needed to
      // match the unseeded final (or the full budget when it never did).
      // A value drifting up past the regression threshold means the
      // adaptation or the seeded trajectory regressed, not timer noise.
      const double seeded_evals =
          outcome.seeded_evals > 0
              ? static_cast<double>(outcome.seeded_evals)
              : static_cast<double>(target_evals);
      if (!first) json += ",";
      first = false;
      json += "{\"name\":\"exp14/" + outcome.name +
              "/seeded_evals_to_match\",\"run_type\":\"iteration\",";
      json += "\"real_time\":" + std::to_string(seeded_evals) +
              ",\"time_unit\":\"ns\"},";
      json += "{\"name\":\"exp14/" + outcome.name +
              "/unseeded_search\",\"run_type\":\"iteration\",";
      json += "\"real_time\":" + std::to_string(outcome.unseeded_seconds * 1e9) +
              ",\"time_unit\":\"ns\"},";
      json += "{\"name\":\"exp14/" + outcome.name +
              "/seeded_search\",\"run_type\":\"iteration\",";
      json += "\"real_time\":" + std::to_string(outcome.seeded_seconds * 1e9) +
              ",\"time_unit\":\"ns\"}";
    }
    json += "]}";
    std::ofstream out(out_path, std::ios::binary);
    out << json << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }
  return pass ? 0 : 1;
}
