# Empty dependencies file for alpa_like_test.
# This may be replaced when dependencies are built.
