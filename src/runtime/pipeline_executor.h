// The Aceso runtime, simulated: executes a parallel configuration under
// 1F1B pipeline scheduling in a discrete-event simulation and reports
// *actual* iteration time and memory consumption.
//
// This plays the role of the paper's modified Megatron-LM runtime: the
// numbers it produces are what Exp#1 reports as throughput and what Exp#8/#9
// compare the performance model's predictions against. It deliberately
// models more detail than the closed-form model:
//
//   * per-microbatch scheduling emerges from task dependencies rather than
//     the warmup/steady/cooldown decomposition of Eq. 2;
//   * inter-stage transfers contend on shared link resources;
//   * every task's duration carries fresh run-to-run jitter around the
//     profiled mean;
//   * memory is tracked through a caching-allocator simulation instead of
//     Eq. 1's closed form.

#ifndef SRC_RUNTIME_PIPELINE_EXECUTOR_H_
#define SRC_RUNTIME_PIPELINE_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "src/config/parallel_config.h"
#include "src/cost/perf_model.h"
#include "src/plan/schedule.h"

namespace aceso {

struct ExecutionOptions {
  uint64_t seed = 7;
  // Pipeline schedule to execute (the performance model assumes 1F1B).
  PipelineSchedule schedule = PipelineSchedule::k1F1B;
  // Relative stddev of per-task duration jitter.
  double run_jitter = 0.015;
  // Skip the allocator simulation (faster, for time-only experiments).
  bool simulate_memory = true;
  // When non-empty, write the executed schedule as Chrome trace JSON here.
  std::string chrome_trace_path;
  // Fill ExecutionResult::ascii_timeline with a terminal rendering of the
  // schedule (shows pipeline bubbles at a glance).
  bool render_timeline = false;
};

struct StageExecution {
  double gpu_busy_seconds = 0.0;
  int64_t peak_allocated_bytes = 0;
  int64_t peak_reserved_bytes = 0;
  bool oom = false;
};

struct ExecutionResult {
  bool oom = false;
  double iteration_seconds = 0.0;
  std::vector<StageExecution> stages;
  // Populated when ExecutionOptions::render_timeline is set.
  std::string ascii_timeline;

  double Throughput(int64_t global_batch) const {
    return iteration_seconds > 0.0
               ? static_cast<double>(global_batch) / iteration_seconds
               : 0.0;
  }
};

class PipelineExecutor {
 public:
  // `model` supplies the graph, cluster, and profiled op costs; must outlive
  // the executor.
  explicit PipelineExecutor(const PerformanceModel* model);

  // Simulates one training iteration of `config` (must be valid).
  ExecutionResult Execute(const ParallelConfig& config,
                          const ExecutionOptions& options = {}) const;

  // Effective TFLOPS/GPU of an execution (paper appendix A: 3x forward
  // FLOPs, excluding recomputation).
  double EffectiveTflopsPerGpu(const ExecutionResult& result) const;

 private:
  const PerformanceModel* model_;
};

}  // namespace aceso

#endif  // SRC_RUNTIME_PIPELINE_EXECUTOR_H_
