file(REMOVE_RECURSE
  "CMakeFiles/micro_perf_model.dir/bench/micro_perf_model.cc.o"
  "CMakeFiles/micro_perf_model.dir/bench/micro_perf_model.cc.o.d"
  "bench/micro_perf_model"
  "bench/micro_perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
