#include "src/core/finetune.h"

#include <gtest/gtest.h>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class FineTuneTest : public ::testing::Test {
 protected:
  FineTuneTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(8)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(FineTuneTest, NeverWorsensTheConfig) {
  auto maybe = MakeEvenConfig(graph_, cluster_, 2, 8);
  ASSERT_TRUE(maybe.ok());
  ParallelConfig config = *maybe;
  const PerfResult before = model_.Evaluate(config);
  const TimeBudget budget(5.0);
  const PerfResult after = FineTune(model_, config, before, budget);
  EXPECT_FALSE(before.BetterThan(after));
  EXPECT_TRUE(config.Validate(graph_, cluster_).ok());
}

TEST_F(FineTuneTest, ReturnsEvaluationOfFinalConfig) {
  auto maybe = MakeEvenConfig(graph_, cluster_, 2, 8);
  ASSERT_TRUE(maybe.ok());
  ParallelConfig config = *maybe;
  const PerfResult before = model_.Evaluate(config);
  const TimeBudget budget(5.0);
  const PerfResult after = FineTune(model_, config, before, budget);
  const PerfResult check = model_.Evaluate(config);
  EXPECT_DOUBLE_EQ(after.iteration_time, check.iteration_time);
}

TEST_F(FineTuneTest, CanImproveASuboptimalUniformPlan) {
  // A deliberately poor plan: full tensor parallelism on a single stage of 8
  // GPUs with a big microbatch. Fine-tuning's tp/dp split adjustment should
  // find something faster.
  auto maybe = MakeEvenConfig(graph_, cluster_, 1, 8);
  ASSERT_TRUE(maybe.ok());
  ParallelConfig config = *maybe;
  config.MutableStage(0).SetUniformParallelism(graph_, 8, 1);
  ASSERT_TRUE(config.Validate(graph_, cluster_).ok());
  const PerfResult before = model_.Evaluate(config);
  const TimeBudget budget(10.0);
  FineTuneOptions options;
  options.max_split_points_per_stage = 16;
  const PerfResult after = FineTune(model_, config, before, budget, options);
  EXPECT_LE(after.iteration_time, before.iteration_time);
}

TEST_F(FineTuneTest, ExpiredBudgetIsNoop) {
  auto maybe = MakeEvenConfig(graph_, cluster_, 2, 8);
  ASSERT_TRUE(maybe.ok());
  ParallelConfig config = *maybe;
  const ParallelConfig original = config;
  const PerfResult before = model_.Evaluate(config);
  const TimeBudget budget(1e-9);  // effectively expired
  // Give the budget a moment to expire.
  while (!budget.Expired()) {
  }
  FineTune(model_, config, before, budget);
  EXPECT_EQ(config.SemanticHash(graph_), original.SemanticHash(graph_));
}

TEST_F(FineTuneTest, MixedTpDpWithinStageIsReachable) {
  // The paper's Wide-ResNet case study: fine-tuning can leave different ops
  // of one stage with different (tp, dp). Verify the mechanism can produce
  // a heterogeneous stage at all.
  const OpGraph wrn = models::WideResnet(0.5);
  ProfileDatabase db(cluster_);
  PerformanceModel model(&wrn, cluster_, &db);
  auto maybe = MakeEvenConfig(wrn, cluster_, 1, 8);
  ASSERT_TRUE(maybe.ok());
  ParallelConfig config = *maybe;
  const PerfResult before = model.Evaluate(config);
  const TimeBudget budget(10.0);
  FineTune(model, config, before, budget);
  EXPECT_TRUE(config.Validate(wrn, cluster_).ok());
}

}  // namespace
}  // namespace aceso
