# Empty dependencies file for exp01_throughput.
# This may be replaced when dependencies are built.
