# Empty compiler generated dependencies file for aceso_config.
# This may be replaced when dependencies are built.
