# Empty dependencies file for exp03_scalability_1k.
# This may be replaced when dependencies are built.
