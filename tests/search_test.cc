#include "src/core/search.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/core/finetune.h"
#include "src/ir/models/model_zoo.h"
#include "src/obs/telemetry.h"

namespace aceso {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  SearchTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(4)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  SearchOptions FastOptions() {
    SearchOptions options;
    options.time_budget_seconds = 0.5;
    options.max_hops = 5;
    return options;
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(SearchTest, FindsAFeasibleConfiguration) {
  const SearchResult result = AcesoSearch(model_, FastOptions());
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.best.perf.oom);
  EXPECT_TRUE(result.best.config.Validate(graph_, cluster_).ok());
  EXPECT_GT(result.stats.configs_explored, 0);
}

TEST_F(SearchTest, ImprovesOnInitialConfiguration) {
  auto initial = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(initial.ok());
  const PerfResult initial_perf = model_.Evaluate(*initial);
  const SearchResult result = AcesoSearchForStages(model_, FastOptions(), 2);
  ASSERT_TRUE(result.found);
  EXPECT_LT(result.best.perf.iteration_time, initial_perf.iteration_time);
}

TEST_F(SearchTest, RespectsTimeBudgetRoughly) {
  SearchOptions options = FastOptions();
  options.time_budget_seconds = 0.3;
  const SearchResult result = AcesoSearch(model_, options);
  // Allow generous slack for the final in-flight iteration.
  EXPECT_LT(result.search_seconds, options.time_budget_seconds + 2.0);
}

TEST_F(SearchTest, ConvergenceTrendIsMonotone) {
  const SearchResult result = AcesoSearch(model_, FastOptions());
  double prev = 1e300;
  for (const ConvergencePoint& point : result.convergence) {
    EXPECT_LE(point.best_iteration_time, prev + 1e-12);
    prev = point.best_iteration_time;
  }
}

TEST_F(SearchTest, TopConfigsSortedAndDistinct) {
  const SearchResult result = AcesoSearch(model_, FastOptions());
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.top_configs.size(), 5u);
  for (size_t i = 1; i < result.top_configs.size(); ++i) {
    EXPECT_LE(result.top_configs[i - 1].perf.iteration_time,
              result.top_configs[i].perf.iteration_time);
    EXPECT_NE(result.top_configs[i - 1].config.SemanticHash(graph_),
              result.top_configs[i].config.SemanticHash(graph_));
  }
  // The best of top_configs matches the reported best.
  if (!result.top_configs.empty()) {
    EXPECT_DOUBLE_EQ(result.top_configs[0].perf.iteration_time,
                     result.best.perf.iteration_time);
  }
}

TEST_F(SearchTest, StatsHistogramsMatchImprovementCount) {
  const SearchResult result = AcesoSearch(model_, FastOptions());
  EXPECT_EQ(result.stats.bottleneck_attempts.size(),
            static_cast<size_t>(result.stats.improvements));
  EXPECT_EQ(result.stats.hops_used.size(),
            static_cast<size_t>(result.stats.improvements));
  for (int hops : result.stats.hops_used) {
    EXPECT_GE(hops, 1);
    EXPECT_LE(hops, FastOptions().max_hops);
  }
  for (int attempts : result.stats.bottleneck_attempts) {
    EXPECT_GE(attempts, 1);
  }
}

TEST_F(SearchTest, SingleStageCountSearchWorks) {
  const SearchResult result = AcesoSearchForStages(model_, FastOptions(), 3);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best.config.num_stages(), 3);
}

TEST_F(SearchTest, ImpossibleStageCountReturnsNotFound) {
  const SearchResult result = AcesoSearchForStages(model_, FastOptions(), 5);
  EXPECT_FALSE(result.found);  // 5 stages on 4 GPUs
}

TEST_F(SearchTest, MaxHopsOneStillImproves) {
  SearchOptions options = FastOptions();
  options.max_hops = 1;
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);
  for (int hops : result.stats.hops_used) {
    EXPECT_EQ(hops, 1);
  }
}

TEST_F(SearchTest, RandomSearchWithoutHeuristic2AlsoFindsConfigs) {
  SearchOptions options = FastOptions();
  options.use_heuristic2 = false;
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.best.perf.oom);
}

TEST_F(SearchTest, Heuristic2ConvergesAtLeastAsFastAsRandom) {
  SearchOptions with = FastOptions();
  with.time_budget_seconds = 0.4;
  SearchOptions without = with;
  without.use_heuristic2 = false;
  const SearchResult guided = AcesoSearchForStages(model_, with, 2);
  const SearchResult random = AcesoSearchForStages(model_, without, 2);
  ASSERT_TRUE(guided.found);
  ASSERT_TRUE(random.found);
  EXPECT_LE(guided.best.perf.iteration_time,
            random.best.perf.iteration_time * 1.10);
}

TEST_F(SearchTest, RobustToInitialConfiguration) {
  // Exp#7: different starts converge to similar quality.
  SearchOptions balanced = FastOptions();
  SearchOptions op_imbalanced = FastOptions();
  op_imbalanced.initial_config = InitialConfigKind::kOpImbalanced;
  SearchOptions gpu_imbalanced = FastOptions();
  gpu_imbalanced.initial_config = InitialConfigKind::kGpuImbalanced;

  const SearchResult a = AcesoSearchForStages(model_, balanced, 4);
  const SearchResult b = AcesoSearchForStages(model_, op_imbalanced, 4);
  const SearchResult c = AcesoSearchForStages(model_, gpu_imbalanced, 4);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  ASSERT_TRUE(c.found);
  EXPECT_LT(b.best.perf.iteration_time, a.best.perf.iteration_time * 1.3);
  EXPECT_LT(c.best.perf.iteration_time, a.best.perf.iteration_time * 1.3);
}

TEST_F(SearchTest, StatsMergeAccumulates) {
  SearchStats a;
  a.iterations = 3;
  a.improvements = 1;
  a.configs_explored = 10;
  a.bottleneck_attempts = {1};
  a.hops_used = {2};
  SearchStats b;
  b.iterations = 2;
  b.improvements = 2;
  b.configs_explored = 5;
  b.bottleneck_attempts = {1, 2};
  b.hops_used = {1, 3};
  a.Merge(b);
  EXPECT_EQ(a.iterations, 5);
  EXPECT_EQ(a.improvements, 3);
  EXPECT_EQ(a.configs_explored, 15);
  EXPECT_EQ(a.bottleneck_attempts.size(), 3u);
  EXPECT_EQ(a.hops_used.size(), 3u);
}

TEST_F(SearchTest, WorksWithDedupDisabled) {
  SearchOptions options = FastOptions();
  options.enable_dedup = false;
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.best.perf.oom);
}

TEST_F(SearchTest, InitialConfigEvaluationIsCounted) {
  // With an evaluation budget of 1, the search evaluates the initial
  // configuration and stops before generating any candidate. That single
  // evaluation must appear in configs_explored (it used to be dropped),
  // and it must be the only model evaluation issued.
  SearchOptions options = FastOptions();
  options.time_budget_seconds = 1e6;
  options.max_evaluations = 1;
  const int64_t before = model_.NumEvaluations();
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.stats.configs_explored, 1);
  EXPECT_EQ(model_.NumEvaluations() - before, 1);
}

TEST_F(SearchTest, FineTuneTrialsAreCounted) {
  // FineTune's only model evaluations are its trial configurations, so its
  // trial counter must match the model's evaluation delta exactly (these
  // used to be invisible to SearchStats).
  auto config = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(config.ok());
  const PerfResult initial = model_.Evaluate(*config);
  const TimeBudget budget(1e6);
  int64_t trials = 0;
  const int64_t before = model_.NumEvaluations();
  FineTune(model_, *config, initial, budget, {}, &trials);
  EXPECT_EQ(trials, model_.NumEvaluations() - before);
  EXPECT_GT(trials, 0);
}

TEST_F(SearchTest, ExploredCountNeverExceedsModelEvaluations) {
  // Whole-search sanity: every counted exploration corresponds to a real
  // model evaluation. (The converse is not exact: the recompute fix-up's
  // scratch evaluations are candidate construction and stay uncounted.)
  const int64_t before = model_.NumEvaluations();
  const SearchResult result = AcesoSearchForStages(model_, FastOptions(), 2);
  const int64_t evaluated = model_.NumEvaluations() - before;
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.stats.configs_explored, evaluated);
  EXPECT_GT(result.stats.configs_explored, 1);
}

TEST_F(SearchTest, EvaluationBudgetStopsTheSearch) {
  SearchOptions options = FastOptions();
  options.time_budget_seconds = 1e6;  // only the evaluation budget binds
  options.max_evaluations = 200;
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);
  // The budget is checked between candidates; a fine-tuning pass triggered
  // just before the budget binds may overshoot by one bounded pass — at
  // most (8 splits * 2 directions + 16 flips) per stage at default options.
  EXPECT_GE(result.stats.configs_explored, 200);
  EXPECT_LE(result.stats.configs_explored, 200 + 32 * 2);
}

TEST_F(SearchTest, FixedEvaluationBudgetIsBitReproducible) {
  // Golden search trajectory, captured from the pre-copy-on-write
  // implementation: under a pure evaluation budget the search is
  // deterministic, so the CoW + incremental-hash representation must land
  // on the exact same best configuration, iteration time, and iteration
  // count. Any drift here means candidate generation or dedup behavior
  // changed, not just performance.
  SearchOptions options = FastOptions();
  options.time_budget_seconds = 1e6;
  options.max_evaluations = 3000;
  const SearchResult a = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(a.found);
  EXPECT_EQ(a.best.semantic_hash, 1672875804967310438ULL);
  EXPECT_DOUBLE_EQ(a.best.perf.iteration_time, 22.649582163995891);
  EXPECT_EQ(a.stats.configs_explored, 3000);
  EXPECT_EQ(a.stats.iterations, 40);
  // And it reproduces run-to-run in-process.
  const SearchResult b = AcesoSearchForStages(model_, options, 2);
  EXPECT_EQ(b.best.semantic_hash, a.best.semantic_hash);
  EXPECT_DOUBLE_EQ(b.best.perf.iteration_time, a.best.perf.iteration_time);
  EXPECT_EQ(b.stats.configs_explored, a.stats.configs_explored);
}

TEST_F(SearchTest, ConfigSeededSearchIsBitReproducibleAcrossEvalThreads) {
  // SeedMode::kConfig (DESIGN.md §17): the search starts from a caller-
  // provided configuration — in production an adapted cache neighbor — and
  // must stay on the same deterministic rails as the heuristic init: under a
  // fixed evaluation budget, every eval_threads value lands on the same
  // golden best. The seed here is the best of a short pre-search, the same
  // kind of artifact the serving layer feeds through seed_config.
  SearchOptions pre = FastOptions();
  pre.time_budget_seconds = 1e6;
  pre.max_evaluations = 300;
  const SearchResult base = AcesoSearchForStages(model_, pre, 2);
  ASSERT_TRUE(base.found);
  const auto seed = std::make_shared<const ParallelConfig>(base.best.config);

  auto run = [&](int eval_threads) {
    SearchOptions options = FastOptions();
    options.time_budget_seconds = 1e6;
    options.max_evaluations = 1500;
    options.seed_mode = SeedMode::kConfig;
    options.seed_config = seed;
    options.eval_threads = eval_threads;
    return AcesoSearchForStages(model_, options, 2);
  };
  const SearchResult serial = run(1);
  ASSERT_TRUE(serial.found);
  // Same golden best the unseeded 3000-eval run pins — reached here in half
  // the budget and 8 iterations instead of 40, which is the whole point of
  // seeding.
  EXPECT_EQ(serial.best.semantic_hash, 1672875804967310438ULL);
  EXPECT_DOUBLE_EQ(serial.best.perf.iteration_time, 22.649582163995891);
  EXPECT_EQ(serial.stats.configs_explored, 1500);
  EXPECT_EQ(serial.stats.iterations, 8);
  // A seeded search never finishes worse than the seed it started from.
  EXPECT_LE(serial.best.perf.iteration_time, base.best.perf.iteration_time);

  for (const int eval_threads : {2, 8}) {
    const SearchResult result = run(eval_threads);
    ASSERT_TRUE(result.found) << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.best.semantic_hash, serial.best.semantic_hash)
        << "eval_threads=" << eval_threads;
    EXPECT_DOUBLE_EQ(result.best.perf.iteration_time,
                     serial.best.perf.iteration_time)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.stats.configs_explored, serial.stats.configs_explored)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.stats.iterations, serial.stats.iterations)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.stats.hops_used, serial.stats.hops_used)
        << "eval_threads=" << eval_threads;
  }
}

TEST_F(SearchTest, MismatchedSeedConfigFallsBackToHeuristicInit) {
  // A seed whose stage count does not match the searched count (or that
  // fails Validate) is ignored, not an error: the search degrades to the
  // heuristic init and must reproduce the unseeded golden trajectory
  // exactly.
  auto seed3 = MakeEvenConfig(graph_, cluster_, 3, 1);
  ASSERT_TRUE(seed3.ok());
  SearchOptions options = FastOptions();
  options.time_budget_seconds = 1e6;
  options.max_evaluations = 3000;
  options.seed_mode = SeedMode::kConfig;
  options.seed_config = std::make_shared<const ParallelConfig>(*seed3);
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best.semantic_hash, 1672875804967310438ULL);
  EXPECT_DOUBLE_EQ(result.best.perf.iteration_time, 22.649582163995891);
  EXPECT_EQ(result.stats.configs_explored, 3000);
  EXPECT_EQ(result.stats.iterations, 40);
}

TEST_F(SearchTest, SeedConfigFeedsTheOptionsHash) {
  // The hash contract (DESIGN.md §14): any field that can change the answer
  // must feed SearchOptionsSemanticHash. A seeded and an unseeded search
  // can land on different plans, so attaching a seed must change the hash —
  // and different seeds must hash apart.
  SearchOptions options = FastOptions();
  const uint64_t unseeded = SearchOptionsSemanticHash(options);
  auto seed2 = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(seed2.ok());
  options.seed_config = std::make_shared<const ParallelConfig>(*seed2);
  const uint64_t seeded2 = SearchOptionsSemanticHash(options);
  EXPECT_NE(seeded2, unseeded);
  auto seed4 = MakeEvenConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(seed4.ok());
  options.seed_config = std::make_shared<const ParallelConfig>(*seed4);
  EXPECT_NE(SearchOptionsSemanticHash(options), seeded2);
}

TEST_F(SearchTest, WorksWithoutRecomputeAttachment) {
  SearchOptions options = FastOptions();
  options.enable_recompute_attachment = false;
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.best.perf.oom);
}

TEST_F(SearchTest, BudgetHoldsWithUnevenWaves) {
  // 5 stage counts on 4 worker threads serialize into 2 waves. The old
  // budget split (budget * threads / N) granted 0.8*budget per search, so
  // the two waves totalled 1.6x the requested wall-clock. The waves-based
  // split must keep the total within the acceptance bound.
  OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);

  SearchOptions options;
  options.time_budget_seconds = 1.5;
  options.min_stages = 1;
  options.max_stages = 5;
  options.num_threads = 4;
  const SearchResult result = AcesoSearch(model, options);
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.search_seconds, 1.15 * options.time_budget_seconds);
}

TEST_F(SearchTest, MergedConvergenceContainsNoInfeasibleScores) {
  // Under memory pressure every search starts from an OOM configuration
  // whose Score() is 1e12-range. Those sentinel magnitudes used to leak
  // into the merged running-min curve as its first points; merged curves
  // must now carry only feasible, achievable iteration times.
  ClusterSpec tiny = cluster_;
  tiny.gpu.memory_bytes = 6 * kGiB;
  ProfileDatabase tiny_db(tiny);
  PerformanceModel tiny_model(&graph_, tiny, &tiny_db);
  const SearchResult result = AcesoSearch(tiny_model, FastOptions());
  ASSERT_TRUE(result.found);
  ASSERT_FALSE(result.convergence.empty());
  for (const ConvergencePoint& point : result.convergence) {
    EXPECT_TRUE(point.feasible);
    EXPECT_LT(point.best_iteration_time, 1e11);
  }
}

TEST_F(SearchTest, PerStageCountConvergenceFlagsInfeasiblePoints) {
  // Single-stage-count results keep the pre-feasibility phase, but flagged:
  // a point is either feasible with a real time, or marked infeasible.
  ClusterSpec tiny = cluster_;
  tiny.gpu.memory_bytes = 6 * kGiB;
  ProfileDatabase tiny_db(tiny);
  PerformanceModel tiny_model(&graph_, tiny, &tiny_db);
  const SearchResult result =
      AcesoSearchForStages(tiny_model, FastOptions(), 2);
  ASSERT_FALSE(result.convergence.empty());
  for (const ConvergencePoint& point : result.convergence) {
    if (point.feasible) {
      EXPECT_LT(point.best_iteration_time, 1e11);
    }
  }
}

TEST_F(SearchTest, TelemetryEmitsOneEventPerIteration) {
  TelemetrySink sink;
  SearchOptions options = FastOptions();
  options.time_budget_seconds = 1e6;
  options.max_evaluations = 3000;
  options.telemetry = &sink;
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);

  int64_t begins = 0, ends = 0, iterations = 0, accepted = 0;
  for (const TelemetryEvent& event : sink.Events()) {
    if (event.type() == "search_begin") ++begins;
    if (event.type() == "search_end") ++ends;
    if (event.type() == "iteration") {
      ++iterations;
      accepted += event.GetBool("accepted").value_or(false) ? 1 : 0;
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(iterations, result.stats.iterations);
  EXPECT_EQ(accepted, result.stats.improvements);
  EXPECT_EQ(sink.counter("search.iterations"), result.stats.iterations);
  EXPECT_EQ(sink.counter("search.accepts"), result.stats.improvements);
  EXPECT_EQ(sink.counter("search.accepts") + sink.counter("search.rejects"),
            result.stats.iterations);
  EXPECT_EQ(sink.counter("search.finetune_trials") +
                sink.counter("search.candidates_evaluated") + 1,
            result.stats.configs_explored);
}

TEST_F(SearchTest, TelemetryDoesNotPerturbTheSearchTrajectory) {
  // Instrumentation is observation only: under a fixed evaluation budget
  // the instrumented search must land on the exact trajectory the golden
  // test pins for the uninstrumented one.
  TelemetrySink sink;
  SearchOptions options = FastOptions();
  options.time_budget_seconds = 1e6;
  options.max_evaluations = 3000;
  options.telemetry = &sink;
  const SearchResult result = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best.semantic_hash, 1672875804967310438ULL);
  EXPECT_DOUBLE_EQ(result.best.perf.iteration_time, 22.649582163995891);
  EXPECT_EQ(result.stats.configs_explored, 3000);
  EXPECT_EQ(result.stats.iterations, 40);
}

TEST_F(SearchTest, TelemetryStreamIsDeterministicUnderEvaluationBudget) {
  // Two fixed-seed runs under a pure evaluation budget must produce the
  // same event stream, wall-clock fields aside.
  auto run = [&] {
    TelemetrySink sink;
    SearchOptions options = FastOptions();
    options.time_budget_seconds = 1e6;
    options.max_evaluations = 1500;
    options.telemetry = &sink;
    AcesoSearchForStages(model_, options, 2);
    std::vector<std::string> lines;
    for (const TelemetryEvent& event : sink.Events()) {
      lines.push_back(event.ToJsonLineExcluding({"t", "dur"}));
    }
    return lines;
  };
  const std::vector<std::string> first = run();
  const std::vector<std::string> second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_F(SearchTest, ParallelEvaluationIsBitIdenticalToSerial) {
  // The DESIGN.md §11 contract: eval_threads changes only *how fast*
  // candidates are scored, never the trajectory. Under a fixed evaluation
  // budget, every value of eval_threads must land on the golden best
  // configuration, the golden stats, and a byte-identical telemetry event
  // stream (wall-clock fields aside — they are the one legitimately
  // parallelism-dependent output).
  auto run = [&](int eval_threads, int threshold) {
    TelemetrySink sink;
    SearchOptions options = FastOptions();
    options.time_budget_seconds = 1e6;
    options.max_evaluations = 3000;
    options.eval_threads = eval_threads;
    options.parallel_eval_threshold = threshold;
    options.telemetry = &sink;
    const SearchResult result = AcesoSearchForStages(model_, options, 2);
    std::vector<std::string> lines;
    for (const TelemetryEvent& event : sink.Events()) {
      lines.push_back(event.ToJsonLineExcluding({"t", "dur"}));
    }
    return std::make_pair(result, lines);
  };
  const auto [serial, serial_events] = run(1, 4);
  ASSERT_TRUE(serial.found);
  EXPECT_EQ(serial.best.semantic_hash, 1672875804967310438ULL);
  EXPECT_DOUBLE_EQ(serial.best.perf.iteration_time, 22.649582163995891);
  EXPECT_EQ(serial.stats.configs_explored, 3000);
  EXPECT_EQ(serial.stats.iterations, 40);
  ASSERT_FALSE(serial_events.empty());

  // threshold 1 at 2 threads forces the parallel path onto every group,
  // maximizing speculative evaluation + rollback coverage; 8 threads at the
  // default threshold exercises the production shape.
  for (const auto& [eval_threads, threshold] :
       std::vector<std::pair<int, int>>{{2, 1}, {8, 4}}) {
    const auto [result, events] = run(eval_threads, threshold);
    ASSERT_TRUE(result.found) << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.best.semantic_hash, serial.best.semantic_hash)
        << "eval_threads=" << eval_threads;
    EXPECT_DOUBLE_EQ(result.best.perf.iteration_time,
                     serial.best.perf.iteration_time)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.stats.configs_explored, serial.stats.configs_explored)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.stats.iterations, serial.stats.iterations)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.stats.improvements, serial.stats.improvements)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(result.stats.hops_used, serial.stats.hops_used)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(events, serial_events) << "eval_threads=" << eval_threads;
    // Convergence compares on (best_iteration_time, feasible) only:
    // elapsed_seconds is wall-clock.
    ASSERT_EQ(result.convergence.size(), serial.convergence.size())
        << "eval_threads=" << eval_threads;
    for (size_t i = 0; i < result.convergence.size(); ++i) {
      EXPECT_DOUBLE_EQ(result.convergence[i].best_iteration_time,
                       serial.convergence[i].best_iteration_time);
      EXPECT_EQ(result.convergence[i].feasible, serial.convergence[i].feasible);
    }
  }
}

TEST_F(SearchTest, BatchedEvaluationIsBitIdenticalToScalarPath) {
  // The DESIGN.md §13 contract: batch_eval changes only how candidate
  // groups are scored (SoA lanes with shared-stage broadcast), never the
  // trajectory. Both settings must reproduce the golden trajectory — and
  // each other's full event stream — at every eval_threads value.
  auto run = [&](bool batch_eval, int eval_threads) {
    TelemetrySink sink;
    SearchOptions options = FastOptions();
    options.time_budget_seconds = 1e6;
    options.max_evaluations = 3000;
    options.batch_eval = batch_eval;
    options.eval_threads = eval_threads;
    options.telemetry = &sink;
    const SearchResult result = AcesoSearchForStages(model_, options, 2);
    std::vector<std::string> lines;
    for (const TelemetryEvent& event : sink.Events()) {
      lines.push_back(event.ToJsonLineExcluding({"t", "dur"}));
    }
    return std::make_pair(result, lines);
  };

  for (const int eval_threads : {1, 2, 8}) {
    const auto [scalar, scalar_events] = run(false, eval_threads);
    const auto [batched, batched_events] = run(true, eval_threads);
    ASSERT_TRUE(scalar.found) << "eval_threads=" << eval_threads;
    ASSERT_TRUE(batched.found) << "eval_threads=" << eval_threads;
    // Both paths land on the golden trajectory...
    EXPECT_EQ(scalar.best.semantic_hash, 1672875804967310438ULL)
        << "eval_threads=" << eval_threads;
    EXPECT_EQ(batched.best.semantic_hash, 1672875804967310438ULL)
        << "eval_threads=" << eval_threads;
    EXPECT_DOUBLE_EQ(scalar.best.perf.iteration_time, 22.649582163995891);
    EXPECT_DOUBLE_EQ(batched.best.perf.iteration_time, 22.649582163995891);
    EXPECT_EQ(scalar.stats.configs_explored, 3000);
    EXPECT_EQ(batched.stats.configs_explored, 3000);
    EXPECT_EQ(scalar.stats.iterations, 40);
    EXPECT_EQ(batched.stats.iterations, 40);
    // ...and on each other, event for event and point for point.
    EXPECT_EQ(batched.stats.improvements, scalar.stats.improvements);
    EXPECT_EQ(batched.stats.hops_used, scalar.stats.hops_used);
    EXPECT_EQ(batched_events, scalar_events)
        << "eval_threads=" << eval_threads;
    ASSERT_EQ(batched.convergence.size(), scalar.convergence.size());
    for (size_t i = 0; i < batched.convergence.size(); ++i) {
      EXPECT_DOUBLE_EQ(batched.convergence[i].best_iteration_time,
                       scalar.convergence[i].best_iteration_time);
      EXPECT_EQ(batched.convergence[i].evaluations,
                scalar.convergence[i].evaluations);
      EXPECT_EQ(batched.convergence[i].feasible,
                scalar.convergence[i].feasible);
    }
  }
}

TEST_F(SearchTest, DpSeededSearchTrajectoryIsBitReproducible) {
  // DP seeding intentionally changes the trajectory — so it carries its own
  // golden: the seeded search must be deterministic under a pure evaluation
  // budget and land on the same best config run-to-run, batched or not.
  SearchOptions options = FastOptions();
  options.time_budget_seconds = 1e6;
  options.max_evaluations = 3000;
  options.seed_mode = SeedMode::kDp;
  const SearchResult a = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(a.found);
  const SearchResult b = AcesoSearchForStages(model_, options, 2);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.best.semantic_hash, b.best.semantic_hash);
  EXPECT_DOUBLE_EQ(a.best.perf.iteration_time, b.best.perf.iteration_time);
  EXPECT_EQ(a.stats.configs_explored, b.stats.configs_explored);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);

  SearchOptions scalar = options;
  scalar.batch_eval = false;
  const SearchResult c = AcesoSearchForStages(model_, scalar, 2);
  ASSERT_TRUE(c.found);
  EXPECT_EQ(c.best.semantic_hash, a.best.semantic_hash);
  EXPECT_DOUBLE_EQ(c.best.perf.iteration_time, a.best.perf.iteration_time);
  EXPECT_EQ(c.stats.configs_explored, a.stats.configs_explored);

  // The DP seed can only start the search at or below the heuristic seed's
  // initial prediction (it prices several DP solutions and keeps the best).
  SearchOptions heuristic = options;
  heuristic.seed_mode = SeedMode::kHeuristic;
  const SearchResult h = AcesoSearchForStages(model_, heuristic, 2);
  ASSERT_TRUE(h.found);
  ASSERT_FALSE(a.convergence.empty());
  ASSERT_FALSE(h.convergence.empty());
  EXPECT_LE(a.convergence.front().best_iteration_time,
            h.convergence.front().best_iteration_time * 1.25);
}

TEST_F(SearchTest, ParallelEvaluationMatchesSerialAcrossStageCounts) {
  // The full AcesoSearch shape: stage-count workers and evaluation batches
  // share one pool. Deterministic per-search budgets make the merged result
  // comparable bit-for-bit (modulo wall-clock) between serial and parallel
  // evaluation.
  auto run = [&](int eval_threads) {
    SearchOptions options = FastOptions();
    options.time_budget_seconds = 1e6;
    options.max_evaluations = 400;
    options.num_threads = 2;
    options.eval_threads = eval_threads;
    options.parallel_eval_threshold = 2;
    return AcesoSearch(model_, options);
  };
  const SearchResult serial = run(1);
  const SearchResult parallel = run(4);
  ASSERT_TRUE(serial.found);
  ASSERT_TRUE(parallel.found);
  EXPECT_EQ(parallel.best.semantic_hash, serial.best.semantic_hash);
  EXPECT_DOUBLE_EQ(parallel.best.perf.iteration_time,
                   serial.best.perf.iteration_time);
  EXPECT_EQ(parallel.stats.configs_explored, serial.stats.configs_explored);
  EXPECT_EQ(parallel.stats.iterations, serial.stats.iterations);
  ASSERT_EQ(parallel.top_configs.size(), serial.top_configs.size());
  for (size_t i = 0; i < parallel.top_configs.size(); ++i) {
    EXPECT_EQ(parallel.top_configs[i].semantic_hash,
              serial.top_configs[i].semantic_hash);
  }
}

TEST_F(SearchTest, MemoryPressureTriggersRecomputation) {
  // On a memory-starved device, the found configuration must use
  // recomputation (or very high parallelism) to become feasible.
  ClusterSpec tiny = cluster_;
  tiny.gpu.memory_bytes = 6 * kGiB;
  ProfileDatabase tiny_db(tiny);
  PerformanceModel tiny_model(&graph_, tiny, &tiny_db);
  const SearchResult result = AcesoSearch(tiny_model, FastOptions());
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.best.perf.oom);
}

}  // namespace
}  // namespace aceso
