// CandidateBatch: SoA layout and broadcast sharing, bit-identity to
// Evaluate(), singleton/masked-lane behavior, and evaluation-count parity.

#include "src/cost/batch_eval.h"

#include <gtest/gtest.h>

#include "src/aceso.h"

namespace aceso {
namespace {

class BatchEvalTest : public ::testing::Test {
 protected:
  BatchEvalTest()
      : graph_(*models::BuildByName("gpt3-0.35b")),
        cluster_(ClusterSpec::WithGpuCount(4)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  // A candidate group the search would form: CoW copies of one base, each
  // with one stage's recompute flags toggled.
  std::vector<ParallelConfig> MakeSiblings(const ParallelConfig& base,
                                           int count) {
    std::vector<ParallelConfig> siblings;
    for (int i = 0; i < count; ++i) {
      ParallelConfig sibling = base;
      const int stage = i % base.num_stages();
      StageConfig& mutated = sibling.MutableStage(stage);
      for (int j = 0; j <= i % mutated.num_ops; ++j) {
        OpParallel& setting = mutated.ops[static_cast<size_t>(j)];
        setting.recompute = !setting.recompute;
      }
      siblings.push_back(std::move(sibling));
    }
    return siblings;
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(BatchEvalTest, SharedStagesBroadcastOneResolution) {
  auto base = MakeEvenConfig(graph_, cluster_, 2, 4);
  ASSERT_TRUE(base.ok());
  // Four siblings, all mutating stage 0; stage 1 stays block-identical.
  std::vector<ParallelConfig> siblings;
  for (int i = 0; i < 4; ++i) {
    ParallelConfig s = *base;
    StageConfig& mutated = s.MutableStage(0);
    for (int j = 0; j <= i; ++j) {
      mutated.ops[static_cast<size_t>(j)].recompute =
          !mutated.ops[static_cast<size_t>(j)].recompute;
    }
    siblings.push_back(std::move(s));
  }

  CandidateBatch batch(model_);
  for (const ParallelConfig& s : siblings) {
    batch.AddLane(&s);
  }
  batch.EvaluateAll();

  // Stage 1 resolved once: all four lanes point at the same StageCost.
  const StageCost* shared = batch.stage_cost_for_testing(1, 0);
  for (int lane = 1; lane < 4; ++lane) {
    EXPECT_EQ(batch.stage_cost_for_testing(1, lane), shared) << lane;
  }
  // Stage 0 differs per lane: four distinct resolutions.
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_NE(batch.stage_cost_for_testing(0, a),
                batch.stage_cost_for_testing(0, b));
    }
  }
  const BatchEvalStats& stats = batch.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.lanes, 4);
  // 5 resolutions (4 mutated + 1 shared) instead of 8.
  EXPECT_EQ(stats.stage_groups, 5);
  EXPECT_EQ(stats.shared_lookups_saved, 3);
}

TEST_F(BatchEvalTest, LanePerfsBitIdenticalToEvaluate) {
  auto base = MakeEvenConfig(graph_, cluster_, 2, 4);
  ASSERT_TRUE(base.ok());
  const std::vector<ParallelConfig> siblings = MakeSiblings(*base, 5);

  CandidateBatch batch(model_);
  for (const ParallelConfig& s : siblings) {
    batch.AddLane(&s);
  }
  batch.EvaluateAll();

  for (int lane = 0; lane < 5; ++lane) {
    const PerfResult scalar =
        model_.Evaluate(siblings[static_cast<size_t>(lane)]);
    const PerfResult& batched = batch.perf(lane);
    ASSERT_EQ(batched.iteration_time, scalar.iteration_time) << lane;
    ASSERT_EQ(batched.oom, scalar.oom) << lane;
    ASSERT_EQ(batched.slowest_stage, scalar.slowest_stage) << lane;
    ASSERT_EQ(batched.max_memory_stage, scalar.max_memory_stage) << lane;
    ASSERT_EQ(batched.stages.size(), scalar.stages.size());
    for (size_t s = 0; s < scalar.stages.size(); ++s) {
      ASSERT_EQ(batched.stages[s].stage_time, scalar.stages[s].stage_time);
      ASSERT_EQ(batched.stages[s].memory_bytes, scalar.stages[s].memory_bytes);
      ASSERT_EQ(batched.stages[s].warmup_time, scalar.stages[s].warmup_time);
      ASSERT_EQ(batched.stages[s].steady_time, scalar.stages[s].steady_time);
      ASSERT_EQ(batched.stages[s].cooldown_time,
                scalar.stages[s].cooldown_time);
    }
  }
}

TEST_F(BatchEvalTest, BitIdenticalWithStageCacheDisabled) {
  model_.set_stage_cache_enabled(false);
  auto base = MakeEvenConfig(graph_, cluster_, 2, 4);
  ASSERT_TRUE(base.ok());
  const std::vector<ParallelConfig> siblings = MakeSiblings(*base, 4);
  CandidateBatch batch(model_);
  for (const ParallelConfig& s : siblings) {
    batch.AddLane(&s);
  }
  batch.EvaluateAll();
  for (int lane = 0; lane < 4; ++lane) {
    const PerfResult scalar =
        model_.Evaluate(siblings[static_cast<size_t>(lane)]);
    EXPECT_EQ(batch.perf(lane).iteration_time, scalar.iteration_time) << lane;
    EXPECT_EQ(batch.perf(lane).oom, scalar.oom) << lane;
  }
}

TEST_F(BatchEvalTest, SingletonLaneMatchesEvaluate) {
  auto base = MakeEvenConfig(graph_, cluster_, 2, 4);
  ASSERT_TRUE(base.ok());
  CandidateBatch batch(model_);
  batch.AddLane(&*base);
  batch.EvaluateAll();
  const PerfResult scalar = model_.Evaluate(*base);
  EXPECT_EQ(batch.perf(0).iteration_time, scalar.iteration_time);
  EXPECT_EQ(batch.stats().lanes, 1);
  EXPECT_EQ(batch.stats().shared_lookups_saved, 0);
}

TEST_F(BatchEvalTest, MaskedLanesAreNotEvaluatedOrCharged) {
  auto base = MakeEvenConfig(graph_, cluster_, 2, 4);
  ASSERT_TRUE(base.ok());
  const std::vector<ParallelConfig> siblings = MakeSiblings(*base, 4);
  CandidateBatch batch(model_);
  for (const ParallelConfig& s : siblings) {
    batch.AddLane(&s);
  }
  batch.SetActive(1, false);
  batch.SetActive(3, false);

  const int64_t before = model_.NumEvaluations();
  batch.EvaluateAll();
  // Exactly one evaluation charged per *active* lane.
  EXPECT_EQ(model_.NumEvaluations() - before, 2);
  EXPECT_EQ(batch.stats().lanes, 2);

  for (const int lane : {0, 2}) {
    const PerfResult scalar =
        model_.Evaluate(siblings[static_cast<size_t>(lane)]);
    EXPECT_EQ(batch.perf(lane).iteration_time, scalar.iteration_time) << lane;
  }
}

TEST_F(BatchEvalTest, EvaluationCountMatchesScalarPath) {
  auto base = MakeEvenConfig(graph_, cluster_, 2, 4);
  ASSERT_TRUE(base.ok());
  const std::vector<ParallelConfig> siblings = MakeSiblings(*base, 6);

  const int64_t before = model_.NumEvaluations();
  CandidateBatch batch(model_);
  for (const ParallelConfig& s : siblings) {
    batch.AddLane(&s);
  }
  batch.EvaluateAll();
  EXPECT_EQ(model_.NumEvaluations() - before, 6);
}

TEST_F(BatchEvalTest, ClearResetsLanesAndStats) {
  auto base = MakeEvenConfig(graph_, cluster_, 2, 4);
  ASSERT_TRUE(base.ok());
  CandidateBatch batch(model_);
  batch.AddLane(&*base);
  batch.EvaluateAll();
  EXPECT_EQ(batch.num_lanes(), 1);
  batch.Clear();
  EXPECT_EQ(batch.num_lanes(), 0);
  EXPECT_EQ(batch.stats().batches, 0);
  EXPECT_EQ(batch.stats().lanes, 0);
  // Reusable after Clear, including with a different stage count.
  auto other = MakeEvenConfig(graph_, cluster_, 4, 4);
  ASSERT_TRUE(other.ok());
  batch.AddLane(&*other);
  batch.EvaluateAll();
  EXPECT_EQ(batch.perf(0).stages.size(), 4u);
}

}  // namespace
}  // namespace aceso
