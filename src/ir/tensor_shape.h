// Dense tensor shapes. Used by the model builders to derive FLOP counts and
// activation sizes; the search itself only consumes the derived quantities.

#ifndef SRC_IR_TENSOR_SHAPE_H_
#define SRC_IR_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace aceso {

class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit TensorShape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const { return dims_.at(static_cast<size_t>(i)); }
  const std::vector<int64_t>& dims() const { return dims_; }

  // Product of all dimensions (1 for a scalar/rank-0 shape).
  int64_t NumElements() const;

  // "[2048, 1024]".
  std::string ToString() const;

  bool operator==(const TensorShape& other) const {
    return dims_ == other.dims_;
  }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace aceso

#endif  // SRC_IR_TENSOR_SHAPE_H_
