// Ablation of Aceso's search-algorithm design choices (DESIGN.md §6; the
// paper motivates each in §3.2/§4.2/§4.3 without an explicit figure).
//
// Under an equal budget, toggles off one ingredient at a time:
//   * Heuristic-2 ordering (random exploration instead),
//   * configuration-semantic deduplication,
//   * the recompute attachment on every primitive,
//   * the op-level fine-tuning pass,
//   * the stage-cost cache (every stage walk recomputed from scratch),
// and reports the best predicted iteration time and exploration statistics.
//
// Expected shape: the full system converges to the best (or tied-best)
// configuration; dropping dedup wastes evaluations on revisits; dropping the
// recompute attachment and fine-tuning costs final quality on
// memory-pressured settings.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Ablation: search design choices",
              "every §4.2/§4.3 ingredient pays for itself under a fixed "
              "budget");

  std::vector<std::pair<std::string, int>> settings = {
      {"gpt3-2.6b", 8},
      {"wresnet-2b", 4},
  };
  if (QuickMode()) {
    settings = {{"gpt3-0.35b", 4}};
  }

  struct Variant {
    const char* name;
    void (*tweak)(SearchOptions&);
    bool disable_stage_cache;
  };
  const Variant variants[] = {
      {"full system", [](SearchOptions&) {}, false},
      {"w/o heuristic-2",
       [](SearchOptions& o) { o.use_heuristic2 = false; }, false},
      {"w/o dedup", [](SearchOptions& o) { o.enable_dedup = false; }, false},
      {"w/o rc attachment",
       [](SearchOptions& o) { o.enable_recompute_attachment = false; },
       false},
      {"w/o fine-tuning",
       [](SearchOptions& o) { o.enable_finetune = false; }, false},
      {"w/o stage cache", [](SearchOptions&) {}, true},
  };

  for (const auto& [name, gpus] : settings) {
    std::printf("\n--- %s @%dgpu ---\n", name.c_str(), gpus);
    Workload workload(name, gpus);
    TablePrinter table({"variant", "best pred iter(s)", "configs explored",
                        "improvements", "cache hit%"});
    for (const Variant& variant : variants) {
      SearchOptions options = DefaultSearchOptions();
      variant.tweak(options);
      // Every variant starts from a cold cache so none inherits the
      // previous run's warm entries.
      workload.model().mutable_stage_cache().Clear();
      workload.model().mutable_stage_cache().set_enabled(
          !variant.disable_stage_cache);
      const SearchResult result = AcesoSearch(workload.model(), options);
      const int64_t lookups =
          result.stats.cache_hits + result.stats.cache_misses;
      table.AddRow({variant.name,
                    result.found
                        ? FormatDouble(result.best.perf.iteration_time, 2)
                        : "x",
                    std::to_string(result.stats.configs_explored),
                    std::to_string(result.stats.improvements),
                    lookups > 0
                        ? FormatDouble(100.0 * result.stats.cache_hits /
                                           static_cast<double>(lookups),
                                       1)
                        : "-"});
    }
    workload.model().mutable_stage_cache().set_enabled(true);
    table.Print(std::cout);
  }
  return 0;
}
