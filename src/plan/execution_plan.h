// Lowering a parallel configuration to a per-device execution plan.
//
// The searched ParallelConfig describes *what* to parallelize; the Aceso
// runtime needs *how*: for every device, an ordered instruction stream of
// forward/backward compute blocks, activation sends/receives, recompute
// replays, and gradient synchronization, following the 1F1B schedule. This
// module performs that lowering — the equivalent of the paper's runtime
// layer that drives (modified) Megatron-LM from a configuration file.
//
// The plan is also what the discrete-event executor consumes conceptually;
// it can be serialized, diffed, and pretty-printed as a per-device timeline.

#ifndef SRC_PLAN_EXECUTION_PLAN_H_
#define SRC_PLAN_EXECUTION_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/config/parallel_config.h"
#include "src/plan/schedule.h"
#include "src/ir/op_graph.h"

namespace aceso {

enum class InstructionKind {
  kRecvActivation,   // receive the stage input for a microbatch
  kForward,          // run the stage's forward ops for a microbatch
  kSendActivation,   // send the stage output downstream
  kRecvGradient,     // receive the output gradient from downstream
  kBackward,         // run the stage's backward (incl. recompute replays)
  kSendGradient,     // send the input gradient upstream
  kGradientSync,     // data-parallel gradient all-reduce
  kOptimizerStep,    // apply the optimizer after sync
};

const char* InstructionKindName(InstructionKind kind);

struct Instruction {
  InstructionKind kind;
  int microbatch = -1;  // -1 for per-iteration instructions
  // Peer pipeline stage for send/recv instructions, -1 otherwise.
  int peer_stage = -1;
  // Payload bytes for communication instructions.
  int64_t bytes = 0;

  std::string ToString() const;
};

// The instruction stream of one device.
struct DeviceProgram {
  int device = 0;          // global device id
  int stage = 0;           // pipeline stage this device belongs to
  int tp_rank = 0;         // position inside the (modal) tensor group
  int dp_rank = 0;         // position inside the data-parallel group
  std::vector<Instruction> instructions;
};

class ExecutionPlan {
 public:
  // Lowers `config` (must be valid for `graph`'s op count) to per-device
  // instruction streams under the given pipeline schedule.
  static ExecutionPlan Lower(const OpGraph& graph,
                             const ParallelConfig& config,
                             PipelineSchedule schedule = PipelineSchedule::k1F1B);

  int num_devices() const { return static_cast<int>(programs_.size()); }
  const DeviceProgram& program(int device) const {
    return programs_.at(static_cast<size_t>(device));
  }
  const std::vector<DeviceProgram>& programs() const { return programs_; }

  int num_stages() const { return num_stages_; }
  int64_t num_microbatches() const { return num_microbatches_; }

  // Structural self-check: every send has a matching receive with equal
  // bytes on the peer stage, every microbatch's forward precedes its
  // backward, instruction counts match across devices of one stage.
  Status Verify() const;

  // Compact per-stage summary ("stage 0 (4 devices): 128 fwd, 128 bwd,
  // 256 sends, sync 54.2 MB").
  std::string Summary() const;

  // Full listing of one device's instruction stream (for debugging).
  std::string DumpDevice(int device, int max_instructions = 64) const;

 private:
  std::vector<DeviceProgram> programs_;
  int num_stages_ = 0;
  int64_t num_microbatches_ = 0;
};

}  // namespace aceso

#endif  // SRC_PLAN_EXECUTION_PLAN_H_
