#include "src/config/config_io.h"

#include <fstream>
#include <sstream>

#include "src/common/text_record.h"

namespace aceso {
namespace {

constexpr char kHeaderType[] = "aceso_config";

const char* TpDimTag(TpDim dim) {
  switch (dim) {
    case TpDim::kColumn:
      return "col";
    case TpDim::kRow:
      return "row";
    case TpDim::kNone:
      return "none";
  }
  return "none";
}

StatusOr<TpDim> ParseTpDim(const std::string& tag) {
  if (tag == "col") return TpDim::kColumn;
  if (tag == "row") return TpDim::kRow;
  if (tag == "none") return TpDim::kNone;
  return InvalidArgument("unknown tp dim: " + tag);
}

}  // namespace

std::string SerializeConfig(const ParallelConfig& config,
                            const std::string& model_name) {
  std::vector<TextRecord> records;
  {
    TextRecord header;
    header.Set("type", kHeaderType);
    header.Set("model", model_name);
    header.SetInt("microbatch_size", config.microbatch_size());
    header.SetInt("num_stages", config.num_stages());
    records.push_back(std::move(header));
  }
  for (int s = 0; s < config.num_stages(); ++s) {
    const StageConfig& stage = config.stage(s);
    TextRecord rec;
    rec.Set("type", "stage");
    rec.SetInt("index", s);
    rec.SetInt("first_op", stage.first_op);
    rec.SetInt("num_ops", stage.num_ops);
    rec.SetInt("num_devices", stage.num_devices);
    // Per-op settings as a compact run-length string:
    // "tp,dp,dim,rc*count;..."
    std::ostringstream ops;
    int run = 0;
    auto flush = [&](const OpParallel& setting, int count) {
      if (count == 0) {
        return;
      }
      ops << setting.tp << "," << setting.dp << "," << TpDimTag(setting.tp_dim)
          << "," << (setting.recompute ? 1 : 0) << ","
          << (setting.zero_opt ? 1 : 0) << "*" << count << ";";
    };
    for (int i = 0; i < stage.num_ops; ++i) {
      if (i > 0 && stage.ops[static_cast<size_t>(i)] ==
                       stage.ops[static_cast<size_t>(i - 1)]) {
        ++run;
        continue;
      }
      if (i > 0) {
        flush(stage.ops[static_cast<size_t>(i - 1)], run);
      }
      run = 1;
    }
    if (stage.num_ops > 0) {
      flush(stage.ops[static_cast<size_t>(stage.num_ops - 1)], run);
    }
    rec.Set("ops", ops.str());
    records.push_back(std::move(rec));
  }
  return SerializeRecords(records);
}

StatusOr<ParallelConfig> ParseConfig(const std::string& text,
                                     const OpGraph& graph) {
  auto records = ParseRecords(text);
  if (!records.ok()) {
    return records.status();
  }
  if (records->empty()) {
    return InvalidArgument("empty configuration file");
  }
  const TextRecord& header = (*records)[0];
  auto type = header.Get("type");
  if (!type.ok() || *type != kHeaderType) {
    return InvalidArgument("not an aceso_config file");
  }
  auto model = header.Get("model");
  if (!model.ok()) {
    return model.status();
  }
  if (*model != graph.name()) {
    return FailedPrecondition("config was saved for model '" + *model +
                              "', not '" + graph.name() + "'");
  }
  auto mbs = header.GetInt("microbatch_size");
  auto num_stages = header.GetInt("num_stages");
  if (!mbs.ok() || !num_stages.ok()) {
    return InvalidArgument("malformed config header");
  }

  ParallelConfig config;
  config.set_microbatch_size(static_cast<int>(*mbs));
  for (size_t r = 1; r < records->size(); ++r) {
    const TextRecord& rec = (*records)[r];
    auto first_op = rec.GetInt("first_op");
    auto num_ops = rec.GetInt("num_ops");
    auto num_devices = rec.GetInt("num_devices");
    auto ops = rec.Get("ops");
    if (!first_op.ok() || !num_ops.ok() || !num_devices.ok() || !ops.ok()) {
      return InvalidArgument("malformed stage record");
    }
    StageConfig stage;
    stage.first_op = static_cast<int>(*first_op);
    stage.num_ops = static_cast<int>(*num_ops);
    stage.num_devices = static_cast<int>(*num_devices);

    // Parse the run-length op settings.
    std::istringstream iss(*ops);
    std::string token;
    while (std::getline(iss, token, ';')) {
      if (token.empty()) {
        continue;
      }
      int tp = 0;
      int dp = 0;
      char dim_buf[8] = {0};
      int rc = 0;
      int zero = 0;
      int count = 0;
      if (std::sscanf(token.c_str(), "%d,%d,%7[^,],%d,%d*%d", &tp, &dp,
                      dim_buf, &rc, &zero, &count) != 6) {
        return InvalidArgument("malformed op run: " + token);
      }
      auto dim = ParseTpDim(dim_buf);
      if (!dim.ok()) {
        return dim.status();
      }
      OpParallel setting;
      setting.tp = tp;
      setting.dp = dp;
      setting.tp_dim = *dim;
      setting.recompute = rc != 0;
      setting.zero_opt = zero != 0;
      for (int i = 0; i < count; ++i) {
        stage.ops.push_back(setting);
      }
    }
    if (static_cast<int>(stage.ops.size()) != stage.num_ops) {
      return InvalidArgument("op run-length total mismatch in stage " +
                             std::to_string(config.num_stages()));
    }
    config.AddStage(std::move(stage));
  }
  if (config.num_stages() != static_cast<int>(*num_stages)) {
    return InvalidArgument("stage count mismatch");
  }
  return config;
}

Status SaveConfigToFile(const std::string& path, const ParallelConfig& config,
                        const std::string& model_name) {
  std::ofstream out(path);
  if (!out) {
    return Internal("cannot open for writing: " + path);
  }
  out << SerializeConfig(config, model_name);
  out.flush();
  if (!out) {
    return Internal("write failed: " + path);
  }
  return OkStatus();
}

StatusOr<ParallelConfig> LoadConfigFromFile(const std::string& path,
                                            const OpGraph& graph) {
  std::ifstream in(path);
  if (!in) {
    return NotFound("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseConfig(buffer.str(), graph);
}

}  // namespace aceso
