// Megatron-LM baseline (§5 "Baseline systems").
//
// Megatron-LM exposes five *global* knobs: tensor-parallel size tp,
// data-parallel size dp, pipeline stage count pp, microbatch size b, and
// whole-model recomputation on/off. It has no automated search, so — exactly
// as the paper does — we grid-search all five options with Aceso's
// performance model and keep the best feasible configuration.
//
// Structural constraints mirror the real system: tp*dp*pp == #GPUs, tp does
// not cross a node (tp <= gpus/node), stages are uniform contiguous op
// splits with identical device counts, and every op in the model shares the
// same (tp, dp, recompute) setting.

#ifndef SRC_BASELINES_MEGATRON_H_
#define SRC_BASELINES_MEGATRON_H_

#include "src/baselines/baseline_result.h"
#include "src/cost/perf_model.h"

namespace aceso {

struct MegatronOptions {
  // Cap on the microbatch grid (powers of two from 1).
  int max_microbatch = 64;
};

// Builds the Megatron configuration for explicit knob values; returns an
// error when the combination is structurally invalid.
StatusOr<ParallelConfig> MakeMegatronConfig(const OpGraph& graph,
                                            const ClusterSpec& cluster, int tp,
                                            int dp, int pp, int microbatch,
                                            bool recompute);

// Grid search over (tp, dp, pp, b, recompute).
BaselineResult MegatronGridSearch(const PerformanceModel& model,
                                  const MegatronOptions& options = {});

}  // namespace aceso

#endif  // SRC_BASELINES_MEGATRON_H_
