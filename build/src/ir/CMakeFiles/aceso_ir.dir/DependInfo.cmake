
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/model_builder.cc" "src/ir/CMakeFiles/aceso_ir.dir/model_builder.cc.o" "gcc" "src/ir/CMakeFiles/aceso_ir.dir/model_builder.cc.o.d"
  "/root/repo/src/ir/models/model_zoo.cc" "src/ir/CMakeFiles/aceso_ir.dir/models/model_zoo.cc.o" "gcc" "src/ir/CMakeFiles/aceso_ir.dir/models/model_zoo.cc.o.d"
  "/root/repo/src/ir/models/synthetic.cc" "src/ir/CMakeFiles/aceso_ir.dir/models/synthetic.cc.o" "gcc" "src/ir/CMakeFiles/aceso_ir.dir/models/synthetic.cc.o.d"
  "/root/repo/src/ir/op_graph.cc" "src/ir/CMakeFiles/aceso_ir.dir/op_graph.cc.o" "gcc" "src/ir/CMakeFiles/aceso_ir.dir/op_graph.cc.o.d"
  "/root/repo/src/ir/operator.cc" "src/ir/CMakeFiles/aceso_ir.dir/operator.cc.o" "gcc" "src/ir/CMakeFiles/aceso_ir.dir/operator.cc.o.d"
  "/root/repo/src/ir/tensor_shape.cc" "src/ir/CMakeFiles/aceso_ir.dir/tensor_shape.cc.o" "gcc" "src/ir/CMakeFiles/aceso_ir.dir/tensor_shape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aceso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aceso_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
