#include "src/hw/gpu_spec.h"

#include <algorithm>

#include "src/common/hash.h"

namespace aceso {

int64_t BytesPerElement(Precision precision) {
  switch (precision) {
    case Precision::kFp16:
      return 2;
    case Precision::kFp32:
      return 4;
  }
  return 4;
}

const char* PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kFp16:
      return "fp16";
    case Precision::kFp32:
      return "fp32";
  }
  return "fp32";
}

double GpuSpec::PeakFlops(Precision precision) const {
  switch (precision) {
    case Precision::kFp16:
      return peak_fp16_flops;
    case Precision::kFp32:
      return peak_fp32_flops;
  }
  return peak_fp32_flops;
}

uint64_t GpuSpec::Fingerprint() const {
  Hasher h;
  h.Add(peak_fp16_flops);
  h.Add(peak_fp32_flops);
  h.Add(memory_bytes);
  h.Add(hbm_bandwidth);
  h.Add(kernel_launch_seconds);
  h.Add(max_efficiency);
  h.Add(half_saturation_flops);
  h.Add(price_per_hour_usd);
  return h.Digest();
}

double GpuSpec::Efficiency(double flops) const {
  if (flops <= 0.0) {
    return max_efficiency;
  }
  return max_efficiency * flops / (flops + half_saturation_flops);
}

double GpuSpec::ComputeTime(double flops, int64_t bytes_touched,
                            Precision precision) const {
  const double achieved = PeakFlops(precision) * Efficiency(flops);
  const double math_time = achieved > 0.0 ? flops / achieved : 0.0;
  const double mem_time =
      hbm_bandwidth > 0.0 ? static_cast<double>(bytes_touched) / hbm_bandwidth
                          : 0.0;
  return kernel_launch_seconds + std::max(math_time, mem_time);
}

}  // namespace aceso
