#include "src/profile/profile_db.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/units.h"

namespace aceso {
namespace {

Operator MakeMatmul() {
  Operator op;
  op.name = "fc";
  op.kind = OpKind::kMlpFc1;
  op.fwd_flops = 2.0 * 2048 * 1024 * 4096;
  op.param_bytes = int64_t{1024} * 4096 * 2;
  op.in_bytes = int64_t{2048} * 1024 * 2;
  op.out_bytes = int64_t{2048} * 4096 * 2;
  op.max_tp = 16;
  op.tp_class = TpClass::kPartitioned;
  return op;
}

class ProfileDbTest : public ::testing::Test {
 protected:
  ClusterSpec cluster_ = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db_{cluster_, /*seed=*/42};
};

TEST_F(ProfileDbTest, MeasurementsArePositive) {
  const OpMeasurement m = db_.OpTime(MakeMatmul(), Precision::kFp16, 1, 1);
  EXPECT_GT(m.fwd_seconds, 0.0);
  EXPECT_GT(m.bwd_seconds, 0.0);
}

TEST_F(ProfileDbTest, BackwardCostsMoreThanForward) {
  const OpMeasurement m = db_.OpTime(MakeMatmul(), Precision::kFp16, 1, 4);
  EXPECT_GT(m.bwd_seconds, m.fwd_seconds);
}

TEST_F(ProfileDbTest, MemoizationReturnsIdenticalValues) {
  const Operator op = MakeMatmul();
  const OpMeasurement a = db_.OpTime(op, Precision::kFp16, 2, 4);
  const OpMeasurement b = db_.OpTime(op, Precision::kFp16, 2, 4);
  EXPECT_DOUBLE_EQ(a.fwd_seconds, b.fwd_seconds);
  EXPECT_EQ(db_.NumEntries(), 1u);
}

TEST_F(ProfileDbTest, ShardingReducesTimeSublinearly) {
  const Operator op = MakeMatmul();
  const double whole = db_.OpTime(op, Precision::kFp16, 1, 8).fwd_seconds;
  const double shard8 = db_.OpTime(op, Precision::kFp16, 8, 8).fwd_seconds;
  EXPECT_LT(shard8, whole);
  EXPECT_GT(shard8, whole / 8.0);  // efficiency loss, the tp trade-off
}

TEST_F(ProfileDbTest, LargerBatchImprovesEfficiency) {
  const Operator op = MakeMatmul();
  const double b1 = db_.OpTime(op, Precision::kFp16, 1, 1).fwd_seconds;
  const double b8 = db_.OpTime(op, Precision::kFp16, 1, 8).fwd_seconds;
  EXPECT_LT(b8, 8.0 * b1);  // sublinear growth
  EXPECT_GT(b8, b1);
}

TEST_F(ProfileDbTest, DeterministicAcrossInstancesWithSameSeed) {
  ProfileDatabase other(cluster_, /*seed=*/42);
  const Operator op = MakeMatmul();
  EXPECT_DOUBLE_EQ(db_.OpTime(op, Precision::kFp16, 4, 2).fwd_seconds,
                   other.OpTime(op, Precision::kFp16, 4, 2).fwd_seconds);
}

TEST_F(ProfileDbTest, SeedChangesMeasurements) {
  ProfileDatabase other(cluster_, /*seed=*/43);
  const Operator op = MakeMatmul();
  EXPECT_NE(db_.OpTime(op, Precision::kFp16, 4, 2).fwd_seconds,
            other.OpTime(op, Precision::kFp16, 4, 2).fwd_seconds);
}

TEST_F(ProfileDbTest, MeasurementNearAnalyticTime) {
  // Averaged jittered runs stay within the systematic-bias envelope (±5%)
  // of the analytic hardware model.
  const Operator op = MakeMatmul();
  const OpMeasurement m = db_.OpTime(op, Precision::kFp16, 1, 1);
  const double ideal = cluster_.gpu.ComputeTime(
      op.fwd_flops, op.in_bytes + op.out_bytes + op.param_bytes,
      Precision::kFp16);
  EXPECT_NEAR(m.fwd_seconds, ideal, ideal * 0.08);
}

TEST_F(ProfileDbTest, CollectiveTimeInterpolatesBetweenBuckets) {
  const CommDomain domain{4, false};
  const int64_t low = 1 << 20;
  const int64_t high = 1 << 21;
  const double t_low =
      db_.CollectiveTime(CollectiveKind::kAllReduce, low, domain);
  const double t_mid = db_.CollectiveTime(CollectiveKind::kAllReduce,
                                          low + low / 2, domain);
  const double t_high =
      db_.CollectiveTime(CollectiveKind::kAllReduce, high, domain);
  EXPECT_GT(t_mid, t_low);
  EXPECT_LT(t_mid, t_high);
}

TEST_F(ProfileDbTest, CollectiveSingletonFree) {
  EXPECT_EQ(db_.CollectiveTime(CollectiveKind::kAllReduce, kMiB,
                               CommDomain{1, false}),
            0.0);
}

TEST_F(ProfileDbTest, ProfilingOverheadAccumulates) {
  EXPECT_EQ(db_.SimulatedProfilingSeconds(), 0.0);
  db_.OpTime(MakeMatmul(), Precision::kFp16, 1, 1);
  const double after_one = db_.SimulatedProfilingSeconds();
  EXPECT_GT(after_one, 0.0);
  // A cache hit adds nothing.
  db_.OpTime(MakeMatmul(), Precision::kFp16, 1, 1);
  EXPECT_DOUBLE_EQ(db_.SimulatedProfilingSeconds(), after_one);
}

TEST_F(ProfileDbTest, SaveLoadRoundTrip) {
  const Operator op = MakeMatmul();
  const OpMeasurement m = db_.OpTime(op, Precision::kFp16, 2, 4);
  db_.CollectiveTime(CollectiveKind::kAllReduce, kMiB, CommDomain{4, false});
  const std::string path = ::testing::TempDir() + "/profile_db_test.txt";
  ASSERT_TRUE(db_.Save(path).ok());

  ProfileDatabase loaded(cluster_, /*seed=*/999);  // different seed
  ASSERT_TRUE(loaded.Load(path).ok());
  // The loaded database returns the *stored* measurement, not a fresh
  // (different-seed) one.
  EXPECT_DOUBLE_EQ(loaded.OpTime(op, Precision::kFp16, 2, 4).fwd_seconds,
                   m.fwd_seconds);
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, ConcurrentAccessIsSafe) {
  const Operator op = MakeMatmul();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, &op, t] {
      for (int i = 0; i < 200; ++i) {
        db_.OpTime(op, Precision::kFp16, 1 << (i % 4), 1 + t % 3);
        db_.CollectiveTime(CollectiveKind::kAllGather, (i + 1) * 1000,
                           CommDomain{2 + t % 4, false});
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_GT(db_.NumEntries(), 0u);
}

TEST_F(ProfileDbTest, ConcurrentFillersPublishOneDeterministicValue) {
  // Many threads racing to fill the *same* cold keys: the double-checked
  // first-writer-wins insert may measure a key several times, but exactly
  // one value is published, and (measurements being deterministic per key)
  // it equals what a serial fill produces.
  const Operator op = MakeMatmul();
  ProfileDatabase serial{cluster_, /*seed=*/42};
  std::vector<OpMeasurement> expected;
  for (int d = 0; d < 4; ++d) {
    expected.push_back(serial.OpTime(op, Precision::kFp16, 1 << d, 2));
  }

  std::vector<std::thread> threads;
  std::vector<std::vector<OpMeasurement>> seen(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, &op, &seen, t] {
      for (int rep = 0; rep < 50; ++rep) {
        for (int d = 0; d < 4; ++d) {
          seen[static_cast<size_t>(t)].push_back(
              db_.OpTime(op, Precision::kFp16, 1 << d, 2));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& per_thread : seen) {
    ASSERT_EQ(per_thread.size(), 200u);
    for (size_t i = 0; i < per_thread.size(); ++i) {
      EXPECT_EQ(per_thread[i].fwd_seconds, expected[i % 4].fwd_seconds);
      EXPECT_EQ(per_thread[i].bwd_seconds, expected[i % 4].bwd_seconds);
    }
  }
  // First-writer-wins: redundant measurements were discarded, so the
  // entry count (and the profiling-overhead ledger, which only the winning
  // inserter updates) matches the serial fill.
  EXPECT_EQ(db_.NumEntries(), serial.NumEntries());
  EXPECT_EQ(db_.SimulatedProfilingSeconds(),
            serial.SimulatedProfilingSeconds());
}

TEST_F(ProfileDbTest, StatsCountLookupsAndMisses) {
  const Operator op = MakeMatmul();
  const ProfileDbStats before = db_.stats();
  db_.OpTime(op, Precision::kFp16, 1, 2);  // cold: lookup + miss
  db_.OpTime(op, Precision::kFp16, 1, 2);  // warm: lookup only
  const ProfileDbStats delta = db_.stats() - before;
  EXPECT_EQ(delta.lookups, 2);
  EXPECT_EQ(delta.misses, 1);
  EXPECT_GE(delta.lock_contended, 0);
}

}  // namespace
}  // namespace aceso
